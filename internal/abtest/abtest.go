// Package abtest implements µSKU's statistical A/B testing procedure
// (§4): compare two identical servers — same platform, same fleet,
// facing the same load — that differ only in one knob configuration.
// Samples are collected with warm-up discard and independence spacing
// until 95% confidence resolves the comparison; if ~30,000 samples do
// not suffice, the test concludes there is no statistically
// significant difference.
package abtest

import (
	"fmt"

	"softsku/internal/stats"
	"softsku/internal/telemetry"
)

// Trial telemetry: how many A/B tests ran, how they resolved, and the
// distributions of p-values and per-arm sample counts — the tuner's
// equivalent of the paper's per-trial measurement plumbing.
var (
	mTrialsStarted = telemetry.Default.Counter("softsku_abtest_trials_started_total",
		"A/B trials started.")
	mTrialsAccepted = telemetry.Default.Counter("softsku_abtest_trials_accepted_total",
		"A/B trials where the treatment was a significant improvement.")
	mTrialsRejected = telemetry.Default.Counter("softsku_abtest_trials_rejected_total",
		"A/B trials that were not significant or regressed.")
	mTrialPValue = telemetry.Default.Histogram("softsku_abtest_p_value",
		"Final Welch's t-test p-value per trial.")
	mTrialSamples = telemetry.Default.Histogram("softsku_abtest_samples_per_trial",
		"Samples collected per arm before each trial resolved.")
)

// Config tunes the test procedure. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	Confidence float64 // e.g. 0.95
	MaxSamples int     // give-up cap per arm (~30,000 in the paper)
	MinSamples int     // never decide before this many per arm
	CheckEvery int     // significance re-check interval
	WarmupSec  float64 // cold-start discard before sampling (§4)
	SpacingSec float64 // spacing between samples for independence
}

// DefaultConfig mirrors the paper's prototype: 95% confidence, 30k
// sample cap, a few minutes of warm-up, spaced samples.
func DefaultConfig() Config {
	return Config{
		Confidence: 0.95,
		MaxSamples: 30000,
		MinSamples: 300,
		CheckEvery: 100,
		WarmupSec:  180,
		SpacingSec: 0.5,
	}
}

// Sampler produces one measurement of an arm at a virtual time. The
// two arms of a comparison are sampled at identical times so shared
// load variation cancels.
type Sampler func(t float64) float64

// Outcome reports one A/B comparison.
type Outcome struct {
	Control   stats.Sample
	Treatment stats.Sample

	Samples     int     // per arm
	PValue      float64 // Welch's t-test, two-sided
	Significant bool    // at the configured confidence
	DeltaPct    float64 // (treatment - control) / control * 100
	ElapsedSec  float64 // virtual measurement time consumed
}

// Better reports whether the treatment is a statistically significant
// improvement.
func (o Outcome) Better() bool { return o.Significant && o.DeltaPct > 0 }

// Worse reports whether the treatment is a statistically significant
// regression.
func (o Outcome) Worse() bool { return o.Significant && o.DeltaPct < 0 }

// String renders the outcome for design-space maps and logs.
func (o Outcome) String() string {
	sig := "not significant"
	if o.Significant {
		sig = fmt.Sprintf("p=%.2g", o.PValue)
	}
	return fmt.Sprintf("%+.2f%% (%s, n=%d)", o.DeltaPct, sig, o.Samples)
}

// Run performs one A/B comparison starting at virtual time startSec,
// returning the outcome and the virtual time at which sampling ended
// (so successive knob tests experience successive production load).
func Run(cfg Config, control, treatment Sampler, startSec float64) (Outcome, float64) {
	if cfg.Confidence <= 0 || cfg.Confidence >= 1 {
		cfg.Confidence = 0.95
	}
	if cfg.CheckEvery < 1 {
		cfg.CheckEvery = 100
	}
	alpha := 1 - cfg.Confidence
	t := startSec + cfg.WarmupSec // discard cold-start observations
	mTrialsStarted.Inc()

	var out Outcome
	for n := 0; n < cfg.MaxSamples; n++ {
		out.Control.Add(control(t))
		out.Treatment.Add(treatment(t))
		t += cfg.SpacingSec
		out.Samples = n + 1
		if out.Samples >= cfg.MinSamples && out.Samples%cfg.CheckEvery == 0 {
			w := stats.WelchTTest(&out.Treatment, &out.Control)
			// Early stop only on overwhelming evidence (a stricter
			// threshold compensates for sequential peeking) with
			// tightly estimated means; otherwise keep sampling and let
			// the final test at the cap decide at the nominal level.
			if w.P < alpha*0.02 &&
				out.Control.RelCI(cfg.Confidence) < 0.005 &&
				out.Treatment.RelCI(cfg.Confidence) < 0.005 {
				break
			}
		}
	}
	w := stats.WelchTTest(&out.Treatment, &out.Control)
	out.PValue = w.P
	out.Significant = w.P < alpha
	if c := out.Control.Mean(); c != 0 {
		out.DeltaPct = (out.Treatment.Mean() - c) / c * 100
	}
	out.ElapsedSec = t - startSec
	if out.Better() {
		mTrialsAccepted.Inc()
	} else {
		mTrialsRejected.Inc()
	}
	mTrialPValue.Observe(out.PValue)
	mTrialSamples.Observe(float64(out.Samples))
	return out, t
}
