package abtest

import (
	"testing"

	"softsku/internal/chaos"
	"softsku/internal/rng"
)

// The chaos-overhead benchmarks behind BENCH_chaos.json: one full A/B
// trial (equal arms, so every trial runs to the sample cap) with the
// injector absent, attached-but-disabled, and fully armed. The first
// two must be indistinguishable — a disabled injector is near-zero
// cost — and the armed engine's overhead stays small against the
// samplers it wraps.
func benchRun(b *testing.B, inj chaos.Injector) {
	cfg := DefaultConfig()
	cfg.MinSamples = 200
	cfg.MaxSamples = 2000
	cfg.Chaos = inj
	src := rng.New(1)
	control := noisy(src.Split("c"), 100, 0.015, flatLoad)
	treatment := noisy(src.Split("t"), 100, 0.015, flatLoad)
	b.ReportAllocs()
	start := 0.0
	for i := 0; i < b.N; i++ {
		_, end := Run(cfg, control, treatment, start)
		start = end
	}
}

func BenchmarkRunChaosOff(b *testing.B)      { benchRun(b, nil) }
func BenchmarkRunChaosDisabled(b *testing.B) { benchRun(b, chaos.Disabled) }
func BenchmarkRunChaosOn(b *testing.B)       { benchRun(b, chaos.New(1, chaos.DefaultConfig())) }
