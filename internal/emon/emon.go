// Package emon produces EMON-style performance-counter samples from a
// simulated server (§2.2, §4): time-multiplexed counter reads with
// measurement noise, taken under whatever load the fleet is facing at
// that moment. µSKU's A/B tester consumes these samples; its warm-up
// discard and independence spacing live in internal/abtest.
package emon

import (
	"softsku/internal/cache"
	"softsku/internal/rng"
	"softsku/internal/sim"
	"softsku/internal/telemetry"
)

// Counter-read volume: every EMON sample (single-metric or full
// multiplexed group) increments one of these, so operators can see how
// much measurement traffic a tuning run generates (§2.2).
var (
	mSampleReads = telemetry.Default.Counter("softsku_emon_sample_reads_total",
		"Single-metric EMON samples taken (MIPS, QPS, MIPS/W).")
	mGroupReads = telemetry.Default.Counter("softsku_emon_group_reads_total",
		"Full multiplexed counter-group snapshots taken.")
)

// LoadSource supplies the load factor at a virtual time;
// loadgen.Profile is the production implementation.
type LoadSource interface {
	Factor(t float64) float64
}

// measurementNoise is the relative standard deviation of one counter
// sample: EMON multiplexes counter groups, so individual samples carry
// a little error (§2.2 "with minimal error").
const measurementNoise = 0.015

// Sampler reads performance counters from one machine under a shared
// load profile. Two samplers sharing one loadgen.Profile observe the
// same traffic — the paper's "same fleet, facing the same load" A/B
// setup.
type Sampler struct {
	m     *sim.Machine
	load  LoadSource
	noise *rng.Source
}

// NewSampler builds a sampler. The load profile may be shared between
// samplers; the measurement-noise stream is private per sampler.
func NewSampler(m *sim.Machine, load LoadSource, seed uint64) *Sampler {
	return &Sampler{m: m, load: load, noise: rng.New(seed)}
}

// Machine returns the sampled machine.
func (s *Sampler) Machine() *sim.Machine { return s.m }

// operating solves the machine at the load-modulated utilization.
func (s *Sampler) operating(t float64) (sim.Operating, float64) {
	mSampleReads.Inc()
	prof := s.m.Profile()
	factor := 1.0
	if s.load != nil {
		factor = s.load.Factor(t)
	}
	util := prof.MaxCPUUtil * factor
	if util > 1 {
		util = 1
	}
	return s.m.Solve(util), factor
}

// MIPS returns one MIPS sample at virtual time t — µSKU's throughput
// metric (§4). For performance-introspective services (Cache), MIPS
// inflates under overload because exception-handler instructions
// retire without doing useful work — the reason the paper deems MIPS
// unsuitable for Cache.
func (s *Sampler) MIPS(t float64) float64 {
	op, factor := s.operating(t)
	mips := op.MIPS
	if s.m.Profile().IntrospectivePerf && factor > 1.02 {
		// QoS headroom exhausted: exception handlers add instructions.
		mips *= 1 + 1.5*(factor-1.02)
	}
	return mips * (1 + s.noise.Norm(0, measurementNoise))
}

// MIPSPerWatt returns one energy-efficiency sample at virtual time t
// (the §7 extension: optimizing perf/watt rather than performance).
func (s *Sampler) MIPSPerWatt(t float64) float64 {
	op, _ := s.operating(t)
	return op.MIPSPerWatt * (1 + s.noise.Norm(0, measurementNoise))
}

// QPS returns one queries-per-second sample at virtual time t, the
// ODS-visible ground-truth throughput.
func (s *Sampler) QPS(t float64) float64 {
	op, factor := s.operating(t)
	qps := op.QPS
	if s.m.Profile().IntrospectivePerf && factor > 1.02 {
		// Under QoS violations the service sheds work: true throughput
		// drops even as MIPS inflates.
		qps *= 1 - 2.2*(factor-1.02)
	}
	return qps * (1 + s.noise.Norm(0, measurementNoise))
}

// Panel is one paired read of every candidate tuning objective at a
// single virtual time: the evidence a decision ledger stores per trial
// so a counterfactual replay can re-judge it under any of them.
type Panel struct {
	MIPS     float64
	QPS      float64
	PerfWatt float64
	P99      float64 // seconds; lower is better
}

// ReadPanel samples all four objectives from one operating point. P99
// comes from an analytic tail model: per-query service time (path
// length over per-core IPS) amplified by queueing headroom — when
// utilization approaches saturation the tail blows up as svc/(1-util),
// and ln(100) places the 99th percentile of the exponential wait.
// Introspective services degrade the tail fastest under overload.
func (s *Sampler) ReadPanel(t float64) Panel {
	mGroupReads.Inc()
	op, factor := s.operating(t)
	mips, qps, pw := op.MIPS, op.QPS, op.MIPSPerWatt
	var svc float64
	if op.QPS > 0 && op.CoreIPS > 0 {
		svc = op.TotalIPS / op.QPS / op.CoreIPS
	}
	head := 1 - op.Util
	if head < 0.02 {
		head = 0.02
	}
	p99 := svc / head * 4.605 // ln(100)
	if s.m.Profile().IntrospectivePerf && factor > 1.02 {
		over := factor - 1.02
		mips *= 1 + 1.5*over
		qps *= 1 - 2.2*over
		p99 *= 1 + 5*over
	}
	return Panel{
		MIPS:     mips * (1 + s.noise.Norm(0, measurementNoise)),
		QPS:      qps * (1 + s.noise.Norm(0, measurementNoise)),
		PerfWatt: pw * (1 + s.noise.Norm(0, measurementNoise)),
		P99:      p99 * (1 + s.noise.Norm(0, measurementNoise)),
	}
}

// Counters is a multiplexed counter-group snapshot, the EMON view the
// characterization CLI prints.
type Counters struct {
	IPC           float64
	MIPS          float64
	L1CodeMPKI    float64
	L1DataMPKI    float64
	L2CodeMPKI    float64
	L2DataMPKI    float64
	LLCCodeMPKI   float64
	LLCDataMPKI   float64
	ITLBMPKI      float64
	DTLBLoadMPKI  float64
	DTLBStoreMPKI float64
	MemBWGBs      float64
	MemLatencyNS  float64
}

// ReadCounters samples the full counter set at virtual time t.
func (s *Sampler) ReadCounters(t float64) Counters {
	mGroupReads.Inc()
	op, _ := s.operating(t)
	r := op.Rates
	l1c, l1d := r.CacheMPKI(cache.L1)
	l2c, l2d := r.CacheMPKI(cache.L2)
	llcc, llcd := r.CacheMPKI(cache.LLC)
	itlb, dl, ds := r.TLBMPKI()
	return Counters{
		IPC:           op.IPC,
		MIPS:          op.MIPS,
		L1CodeMPKI:    l1c,
		L1DataMPKI:    l1d,
		L2CodeMPKI:    l2c,
		L2DataMPKI:    l2d,
		LLCCodeMPKI:   llcc,
		LLCDataMPKI:   llcd,
		ITLBMPKI:      itlb,
		DTLBLoadMPKI:  dl,
		DTLBStoreMPKI: ds,
		MemBWGBs:      op.MemBWGBs,
		MemLatencyNS:  op.MemLatencyNS,
	}
}
