package emon

import (
	"math"
	"testing"

	"softsku/internal/loadgen"
	"softsku/internal/platform"
	"softsku/internal/sim"
	"softsku/internal/stats"
	"softsku/internal/workload"
)

func newMachine(t *testing.T, svc string) *sim.Machine {
	t.Helper()
	prof, err := workload.ByName(svc)
	if err != nil {
		t.Fatal(err)
	}
	sku, err := platform.ByName(prof.Platform)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := platform.NewServer(sku, sim.ProductionConfig(sku, prof))
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.NewMachine(srv, prof, 99)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMIPSSampleMean(t *testing.T) {
	m := newMachine(t, "Feed2")
	want := m.SolvePeak().MIPS
	s := NewSampler(m, loadgen.Flat(), 1)
	var sm stats.Sample
	for i := 0; i < 500; i++ {
		sm.Add(s.MIPS(float64(i)))
	}
	if math.Abs(sm.Mean()-want)/want > 0.01 {
		t.Fatalf("sample mean %.0f vs operating %.0f", sm.Mean(), want)
	}
	if sm.StdDev() == 0 {
		t.Fatal("samples must carry measurement noise")
	}
	if rel := sm.StdDev() / sm.Mean(); rel < 0.005 || rel > 0.05 {
		t.Fatalf("relative noise %.3f out of expected range", rel)
	}
}

func TestSharedLoadCorrelation(t *testing.T) {
	m := newMachine(t, "Feed2")
	shared := loadgen.NewDiurnal(5)
	shared.Period = 600 // compressed day
	a := NewSampler(m, shared, 1)
	b := NewSampler(m, shared, 2)
	// Same load profile object: both arms see the same swing, so the
	// ratio stays near 1 even as absolute values swing.
	var ratio stats.Sample
	var spread stats.Sample
	for i := 0; i < 300; i++ {
		t0 := float64(i)
		va, vb := a.MIPS(t0), b.MIPS(t0)
		ratio.Add(va / vb)
		spread.Add(va)
	}
	if ratio.StdDev() > 0.05 {
		t.Fatalf("paired samplers should track each other: ratio sd %.3f", ratio.StdDev())
	}
	if spread.StdDev()/spread.Mean() < 0.03 {
		t.Fatalf("diurnal swing missing: rel sd %.3f", spread.StdDev()/spread.Mean())
	}
}

func TestIntrospectiveMIPSInflation(t *testing.T) {
	// §4: Cache executes exception handlers under QoS violations,
	// inflating MIPS while real throughput (QPS) drops.
	m := newMachine(t, "Cache1")
	over := loadgen.Flat()
	s := NewSampler(m, over, 1)
	baseMIPS := s.MIPS(0)
	baseQPS := s.QPS(0)

	s2 := NewSampler(m, fixedLoad(1.15), 1)
	hotMIPS := s2.MIPS(0)
	hotQPS := s2.QPS(0)
	if hotMIPS <= baseMIPS*1.02 {
		t.Fatalf("overloaded Cache MIPS should inflate: %.0f vs %.0f", hotMIPS, baseMIPS)
	}
	if hotQPS >= baseQPS {
		t.Fatalf("overloaded Cache QPS should drop: %.0f vs %.0f", hotQPS, baseQPS)
	}
}

// fixedLoad pins the load factor, for overload tests.
type fixedLoad float64

func (f fixedLoad) Factor(float64) float64 { return float64(f) }

func TestNonIntrospectiveMIPSUnderOverload(t *testing.T) {
	// Non-introspective services saturate at util 1.0 without the
	// exception-handler inflation.
	m := newMachine(t, "Feed2")
	base := NewSampler(m, loadgen.Flat(), 1)
	hot := NewSampler(m, fixedLoad(1.15), 1)
	var b, h stats.Sample
	for i := 0; i < 200; i++ {
		b.Add(base.MIPS(float64(i)))
		h.Add(hot.MIPS(float64(i)))
	}
	// Overload raises util toward 1.0, so MIPS rises at most ~1/0.72.
	if h.Mean() > b.Mean()*1.5 {
		t.Fatalf("non-introspective MIPS inflated too much: %.0f vs %.0f", h.Mean(), b.Mean())
	}
}

func TestReadCounters(t *testing.T) {
	m := newMachine(t, "Web")
	c := NewSampler(m, loadgen.Flat(), 1).ReadCounters(0)
	if c.IPC <= 0 || c.MIPS <= 0 || c.MemBWGBs <= 0 || c.MemLatencyNS <= 0 {
		t.Fatalf("degenerate counters: %+v", c)
	}
	if c.L1CodeMPKI < c.LLCCodeMPKI {
		t.Fatal("L1 code MPKI must exceed LLC code MPKI")
	}
	if c.L1DataMPKI < c.LLCDataMPKI {
		t.Fatal("L1 data MPKI must exceed LLC data MPKI")
	}
}
