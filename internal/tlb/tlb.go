// Package tlb models instruction and data TLBs with 4 KiB and 2 MiB
// page support, and the two huge-page knobs µSKU tunes: transparent
// huge pages (THP policy: madvise/always/never) and statically
// allocated huge pages (SHP pool reserved at boot) — §5(6–7), Figs 11
// and 18 of the paper.
package tlb

import "fmt"

// Page sizes.
const (
	PageShift4K = 12
	PageShift2M = 21
	PageSize4K  = 1 << PageShift4K
	PageSize2M  = 1 << PageShift2M
)

// AccessType distinguishes the DTLB load/store breakdown of Fig 11.
type AccessType uint8

// Access types.
const (
	Fetch AccessType = iota // instruction fetch (ITLB)
	Load
	Store
)

// Stats counts TLB misses by access type.
type Stats struct {
	Fetches, FetchMisses uint64
	Loads, LoadMisses    uint64
	Stores, StoreMisses  uint64
	WalkCycles           uint64 // page-walk cycles charged
}

// MPKI returns misses per kilo-instruction for the given access type.
func (s Stats) MPKI(t AccessType, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	var m uint64
	switch t {
	case Fetch:
		m = s.FetchMisses
	case Load:
		m = s.LoadMisses
	default:
		m = s.StoreMisses
	}
	return float64(m) / float64(instructions) * 1000
}

// lru is a set-associative LRU array of page tags (like real TLBs:
// e.g. Skylake's STLB is 12-way set-associative). Small structures use
// few sets; lookup cost is O(ways).
type lru struct {
	sets   int
	ways   int
	tags   []uint64
	stamps []uint64
	clock  uint64
}

// tlbWays picks an associativity for the given entry count, matching
// typical Intel geometries: small arrays are fully associative, large
// ones 8–12 way.
func tlbWays(entries int) int {
	switch {
	case entries <= 16:
		return entries
	case entries <= 128:
		return 8
	default:
		return 12
	}
}

func newLRU(entries int) *lru {
	if entries < 1 {
		entries = 1
	}
	ways := tlbWays(entries)
	sets := entries / ways
	if sets < 1 {
		sets = 1
	}
	return &lru{
		sets:   sets,
		ways:   ways,
		tags:   make([]uint64, sets*ways),
		stamps: make([]uint64, sets*ways),
	}
}

// access returns true on hit; on miss the entry is installed. Tag 0 is
// reserved as invalid, so callers bias tags by +1.
func (l *lru) access(tag uint64) bool {
	l.clock++
	set := int(tag % uint64(l.sets))
	base := set * l.ways
	victim := base
	for i := base; i < base+l.ways; i++ {
		if l.tags[i] == tag {
			l.stamps[i] = l.clock
			return true
		}
		if l.stamps[i] < l.stamps[victim] {
			victim = i
		}
	}
	l.tags[victim] = tag
	l.stamps[victim] = l.clock
	return false
}

func (l *lru) flush() {
	for i := range l.tags {
		l.tags[i], l.stamps[i] = 0, 0
	}
}

// TLB is one core's two-level TLB: split first-level ITLB/DTLB with
// separate 4 KiB and 2 MiB arrays, backed by a unified second-level
// STLB. Page walks on STLB misses cost walkCycles.
type TLB struct {
	itlb4k, itlb2m *lru
	dtlb4k, dtlb2m *lru
	stlb           *lru
	walkCycles     uint64
	stats          Stats
}

// Geometry describes TLB sizing (taken from the platform SKU).
type Geometry struct {
	ITLB4K, ITLB2M int
	DTLB4K, DTLB2M int
	STLB           int
	WalkCycles     uint64 // cost of a full page walk
}

// New builds a TLB with the given geometry.
func New(g Geometry) *TLB {
	wc := g.WalkCycles
	if wc == 0 {
		wc = 30 // typical radix-walk cost with warm paging caches
	}
	return &TLB{
		itlb4k:     newLRU(g.ITLB4K),
		itlb2m:     newLRU(g.ITLB2M),
		dtlb4k:     newLRU(g.DTLB4K),
		dtlb2m:     newLRU(g.DTLB2M),
		stlb:       newLRU(g.STLB),
		walkCycles: wc,
	}
}

// Access translates a page (already resolved to its base and size by
// the AddressSpace) for the given access type. It returns true on a
// first-level hit; misses that also miss the STLB charge a page walk.
func (t *TLB) Access(pageBase uint64, huge bool, at AccessType) bool {
	// Index by page number (not byte address) so consecutive pages
	// spread across sets; bias by 1 so the zero tag never aliases a
	// real page, and fold the page size in to keep 4K/2M spaces
	// distinct in the shared STLB.
	var tag uint64
	if huge {
		tag = pageBase>>PageShift2M + 1 | 1<<62
	} else {
		tag = pageBase>>PageShift4K + 1
	}
	var first *lru
	switch {
	case at == Fetch && !huge:
		first = t.itlb4k
	case at == Fetch:
		first = t.itlb2m
	case !huge:
		first = t.dtlb4k
	default:
		first = t.dtlb2m
	}
	switch at {
	case Fetch:
		t.stats.Fetches++
	case Load:
		t.stats.Loads++
	default:
		t.stats.Stores++
	}
	if first.access(tag) {
		return true
	}
	// Count misses the way EMON's *_MISSES.MISS_CAUSES_A_WALK events
	// do: a first-level miss that the STLB absorbs is not a miss.
	if !t.stlb.access(tag) {
		switch at {
		case Fetch:
			t.stats.FetchMisses++
		case Load:
			t.stats.LoadMisses++
		default:
			t.stats.StoreMisses++
		}
		t.stats.WalkCycles += t.walkCycles
	}
	return false
}

// Flush empties all levels (context switch to a new address space, or
// reboot).
func (t *TLB) Flush() {
	t.itlb4k.flush()
	t.itlb2m.flush()
	t.dtlb4k.flush()
	t.dtlb2m.flush()
	t.stlb.flush()
}

// Stats returns a copy of the counters.
func (t *TLB) Stats() Stats { return t.stats }

// ResetStats zeroes the counters, keeping entries warm.
func (t *TLB) ResetStats() { t.stats = Stats{} }

// String summarizes the TLB state for diagnostics.
func (t *TLB) String() string {
	return fmt.Sprintf("tlb{itlb misses=%d dtlb misses=%d walks=%d cyc}",
		t.stats.FetchMisses, t.stats.LoadMisses+t.stats.StoreMisses, t.stats.WalkCycles)
}
