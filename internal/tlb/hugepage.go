package tlb

import (
	"fmt"

	"softsku/internal/knob"
)

// Region describes one mapped memory region of a microservice's
// address space, with the attributes that decide its huge-page
// backing.
type Region struct {
	Name    string
	Base    uint64
	Size    uint64
	Code    bool // instruction region (JIT code cache, text)
	Anon    bool // anonymous mapping; only anon memory is THP-eligible
	Madvise bool // calls madvise(MADV_HUGEPAGE); candidates under THP=madvise
	SHP     bool // explicitly allocates from the static huge page pool
}

// AddressSpace resolves virtual addresses to pages under a given
// huge-page policy. Huge-page backing is decided region by region at
// construction time, the way the kernel materializes it at service
// start: SHP-requesting regions draw 2 MiB pages from the boot-time
// pool first, then THP policy covers eligible anonymous regions.
type AddressSpace struct {
	regions []Region
	// hugeChunks[i] is the number of leading 2 MiB chunks of region i
	// that are huge-backed; remaining chunks use 4 KiB pages.
	hugeChunks []uint64
	wastedSHP  int // reserved SHPs no region consumed (2 MiB each)
}

// NewAddressSpace lays out regions under the given THP policy and SHP
// reservation. Regions must not overlap; sizes are rounded up to 2 MiB
// internally for chunk accounting.
func NewAddressSpace(regions []Region, thp knob.THPMode, shpCount int) (*AddressSpace, error) {
	as := &AddressSpace{
		regions:    append([]Region(nil), regions...),
		hugeChunks: make([]uint64, len(regions)),
	}
	for i, r := range regions {
		if r.Size == 0 {
			return nil, fmt.Errorf("tlb: region %q has zero size", r.Name)
		}
		for j := 0; j < i; j++ {
			p := regions[j]
			if r.Base < p.Base+p.Size && p.Base < r.Base+r.Size {
				return nil, fmt.Errorf("tlb: regions %q and %q overlap", p.Name, r.Name)
			}
		}
	}
	// Pass 1: SHP-requesting regions consume the static pool in
	// declaration order, independent of THP policy (§5(7): SHPs must be
	// explicitly requested and cannot be repurposed once reserved).
	remaining := uint64(shpCount)
	for i, r := range as.regions {
		if !r.SHP || remaining == 0 {
			continue
		}
		chunks := chunksOf(r.Size)
		if chunks > remaining {
			chunks = remaining
		}
		as.hugeChunks[i] = chunks
		remaining -= chunks
	}
	as.wastedSHP = int(remaining)
	// Pass 2: THP policy backs the rest of each eligible region. Only
	// non-executable anonymous memory is THP-eligible: file-backed text
	// never is, and the kernel also declines executable anon mappings
	// (JIT code caches) — which is exactly why HHVM backs its code
	// cache with static huge pages instead (§5(7)).
	for i, r := range as.regions {
		if r.Code {
			continue
		}
		eligible := false
		switch thp {
		case knob.THPAlways:
			eligible = r.Anon
		case knob.THPMadvise:
			eligible = r.Anon && r.Madvise
		case knob.THPNever:
			eligible = false
		}
		if eligible {
			as.hugeChunks[i] = chunksOf(r.Size)
		}
	}
	return as, nil
}

func chunksOf(size uint64) uint64 {
	return (size + PageSize2M - 1) / PageSize2M
}

// PageOf resolves an address within region idx to its backing page
// base and size class. Addresses outside the region panic: the
// workload generator always produces in-region addresses, so this is a
// programming error.
func (as *AddressSpace) PageOf(regionIdx int, addr uint64) (pageBase uint64, huge bool) {
	r := as.regions[regionIdx]
	if addr < r.Base || addr >= r.Base+r.Size {
		panic(fmt.Sprintf("tlb: address %#x outside region %q", addr, r.Name))
	}
	chunk := (addr - r.Base) >> PageShift2M
	if chunk < as.hugeChunks[regionIdx] {
		return addr >> PageShift2M << PageShift2M, true
	}
	return addr >> PageShift4K << PageShift4K, false
}

// Resolver is a flattened read-only view of the address space for hot
// loops: page resolution becomes three slice loads and two compares,
// with no Region struct copy per access. It shares the AddressSpace's
// layout and stays valid for its lifetime (the layout is immutable
// after construction).
type Resolver struct {
	base    []uint64
	end     []uint64
	hugeEnd []uint64 // first address past the huge-backed prefix
	regions []Region // for the out-of-region panic message only
}

// Resolver returns the flat resolver for the address space.
func (as *AddressSpace) Resolver() Resolver {
	r := Resolver{
		base:    make([]uint64, len(as.regions)),
		end:     make([]uint64, len(as.regions)),
		hugeEnd: make([]uint64, len(as.regions)),
		regions: as.regions,
	}
	for i, reg := range as.regions {
		r.base[i] = reg.Base
		r.end[i] = reg.Base + reg.Size
		r.hugeEnd[i] = reg.Base + as.hugeChunks[i]<<PageShift2M
	}
	return r
}

// PageOf resolves exactly like AddressSpace.PageOf, including the
// out-of-region panic.
func (r *Resolver) PageOf(regionIdx int, addr uint64) (pageBase uint64, huge bool) {
	if addr < r.base[regionIdx] || addr >= r.end[regionIdx] {
		panic(fmt.Sprintf("tlb: address %#x outside region %q", addr, r.regions[regionIdx].Name))
	}
	if addr < r.hugeEnd[regionIdx] {
		return addr &^ (PageSize2M - 1), true
	}
	return addr &^ (PageSize4K - 1), false
}

// HugeFraction returns the fraction of region idx's chunks that are
// huge-backed, for diagnostics and tests.
func (as *AddressSpace) HugeFraction(regionIdx int) float64 {
	total := chunksOf(as.regions[regionIdx].Size)
	if total == 0 {
		return 0
	}
	return float64(as.hugeChunks[regionIdx]) / float64(total)
}

// WastedSHPMiB returns memory reserved for SHPs that no region
// consumed. Reserved-but-unused huge pages cannot be repurposed, so
// this is memory lost to the service — the cost that creates the SHP
// sweet spot in Fig 18(b).
func (as *AddressSpace) WastedSHPMiB() int { return as.wastedSHP * 2 }

// Regions returns the layout (a copy of the slice header; elements are
// shared and must not be mutated).
func (as *AddressSpace) Regions() []Region { return as.regions }
