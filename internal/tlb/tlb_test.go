package tlb

import (
	"testing"
	"testing/quick"

	"softsku/internal/knob"
	"softsku/internal/rng"
)

func smallGeom() Geometry {
	return Geometry{ITLB4K: 8, ITLB2M: 2, DTLB4K: 8, DTLB2M: 4, STLB: 32, WalkCycles: 35}
}

func TestHitAfterMiss(t *testing.T) {
	tl := New(smallGeom())
	if tl.Access(0x1000, false, Load) {
		t.Fatal("cold access must miss")
	}
	if !tl.Access(0x1000, false, Load) {
		t.Fatal("second access must hit")
	}
	s := tl.Stats()
	if s.Loads != 2 || s.LoadMisses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestSplitITLBandDTLB(t *testing.T) {
	tl := New(smallGeom())
	tl.Access(0x1000, false, Fetch)
	// Same page via a data access must still miss: split TLBs.
	if tl.Access(0x1000, false, Load) {
		t.Fatal("DTLB must not hit on an ITLB-resident page (first level)")
	}
}

func TestSTLBCatchesFirstLevelMiss(t *testing.T) {
	tl := New(smallGeom())
	tl.Access(0x1000, false, Load) // walk, installs STLB too
	walks := tl.Stats().WalkCycles
	// Thrash the 8-entry DTLB 4K array with other pages.
	for i := 1; i <= 8; i++ {
		tl.Access(uint64(i)<<PageShift4K<<4, false, Load)
	}
	tl.Access(0x1000, false, Load) // first-level miss, STLB hit: no new walk
	if got := tl.Stats().WalkCycles; got <= walks {
		t.Skip("STLB large enough to hold all; adjust geometry")
	}
}

func TestWalkCyclesCharged(t *testing.T) {
	tl := New(smallGeom())
	tl.Access(0x1000, false, Store)
	if got := tl.Stats().WalkCycles; got != 35 {
		t.Fatalf("walk cycles = %d, want 35", got)
	}
	if s := tl.Stats(); s.Stores != 1 || s.StoreMisses != 1 {
		t.Fatalf("store stats %+v", s)
	}
}

func TestHugePagesExtendReach(t *testing.T) {
	// A working set spanning 64 MiB: 16384 4K pages thrash any DTLB,
	// but only 32 2M pages fit in dtlb2m+STLB reach far better.
	g := Geometry{ITLB4K: 128, ITLB2M: 8, DTLB4K: 64, DTLB2M: 32, STLB: 1536, WalkCycles: 35}
	run := func(huge bool) float64 {
		tl := New(g)
		src := rng.New(1)
		const span = 64 << 20
		for i := 0; i < 200000; i++ {
			addr := uint64(src.Intn(span))
			var page uint64
			if huge {
				page = addr >> PageShift2M << PageShift2M
			} else {
				page = addr >> PageShift4K << PageShift4K
			}
			tl.Access(page, huge, Load)
		}
		s := tl.Stats()
		return float64(s.LoadMisses) / float64(s.Loads)
	}
	small, big := run(false), run(true)
	if big > small/10 {
		t.Fatalf("huge pages should slash misses: 4K=%g 2M=%g", small, big)
	}
}

func TestFlush(t *testing.T) {
	tl := New(smallGeom())
	tl.Access(0x1000, false, Load)
	tl.Flush()
	if tl.Access(0x1000, false, Load) {
		t.Fatal("flush must invalidate entries")
	}
}

func TestResetStatsKeepsEntries(t *testing.T) {
	tl := New(smallGeom())
	tl.Access(0x1000, false, Load)
	tl.ResetStats()
	if !tl.Access(0x1000, false, Load) {
		t.Fatal("entries must stay warm across ResetStats")
	}
	if s := tl.Stats(); s.Loads != 1 || s.LoadMisses != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestZeroPageNoAlias(t *testing.T) {
	tl := New(smallGeom())
	// Page base 0 must not hit against invalid (zeroed) entries.
	if tl.Access(0, false, Load) {
		t.Fatal("page 0 must miss on a cold TLB")
	}
}

func TestMPKI(t *testing.T) {
	var s Stats
	s.FetchMisses, s.LoadMisses, s.StoreMisses = 10, 20, 5
	if got := s.MPKI(Fetch, 10000); got != 1.0 {
		t.Fatalf("fetch mpki=%g", got)
	}
	if got := s.MPKI(Load, 10000); got != 2.0 {
		t.Fatalf("load mpki=%g", got)
	}
	if got := s.MPKI(Store, 10000); got != 0.5 {
		t.Fatalf("store mpki=%g", got)
	}
	if got := s.MPKI(Load, 0); got != 0 {
		t.Fatalf("zero instructions mpki=%g", got)
	}
}

func regions() []Region {
	return []Region{
		{Name: "text", Base: 0, Size: 64 << 20, Code: true, Anon: true, SHP: true},
		{Name: "heap", Base: 1 << 40, Size: 512 << 20, Anon: true, Madvise: true},
		{Name: "stack", Base: 2 << 40, Size: 8 << 20, Anon: true},
	}
}

func TestAddressSpaceTHPNever(t *testing.T) {
	as, err := NewAddressSpace(regions(), knob.THPNever, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range regions() {
		if as.HugeFraction(i) != 0 {
			t.Fatalf("region %d huge under never+0SHP", i)
		}
	}
	_, huge := as.PageOf(1, 1<<40+4096)
	if huge {
		t.Fatal("expected 4K page")
	}
}

func TestAddressSpaceTHPMadvise(t *testing.T) {
	as, err := NewAddressSpace(regions(), knob.THPMadvise, 0)
	if err != nil {
		t.Fatal(err)
	}
	if as.HugeFraction(0) != 0 { // text doesn't madvise
		t.Fatal("text should not be huge under madvise")
	}
	if as.HugeFraction(1) != 1 { // heap madvises
		t.Fatal("heap should be fully huge under madvise")
	}
	if as.HugeFraction(2) != 0 {
		t.Fatal("stack should not be huge under madvise")
	}
}

func TestAddressSpaceTHPAlways(t *testing.T) {
	as, err := NewAddressSpace(regions(), knob.THPAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Executable mappings are never THP-backed (the kernel declines
	// them; HHVM uses SHPs for its code cache instead).
	if as.HugeFraction(0) != 0 {
		t.Fatal("text must not be THP-backed even under always")
	}
	for _, i := range []int{1, 2} {
		if as.HugeFraction(i) != 1 {
			t.Fatalf("region %d not fully huge under always", i)
		}
	}
}

func TestSHPConsumption(t *testing.T) {
	// text is 64 MiB = 32 chunks; 16 SHPs cover half of it.
	as, err := NewAddressSpace(regions(), knob.THPNever, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := as.HugeFraction(0); got != 0.5 {
		t.Fatalf("SHP coverage = %g, want 0.5", got)
	}
	if as.WastedSHPMiB() != 0 {
		t.Fatalf("wasted=%d", as.WastedSHPMiB())
	}
	// Leading chunks are huge, trailing are not.
	if _, huge := as.PageOf(0, 0); !huge {
		t.Fatal("first chunk should be SHP-backed")
	}
	if _, huge := as.PageOf(0, 63<<20); huge {
		t.Fatal("last chunk should be 4K-backed")
	}
}

func TestSHPOverprovisionWasted(t *testing.T) {
	// 100 SHPs: text consumes 32, 68 are wasted (136 MiB lost).
	as, err := NewAddressSpace(regions(), knob.THPNever, 100)
	if err != nil {
		t.Fatal(err)
	}
	if as.HugeFraction(0) != 1 {
		t.Fatal("text should be fully covered")
	}
	if got := as.WastedSHPMiB(); got != 136 {
		t.Fatalf("wasted = %d MiB, want 136", got)
	}
}

func TestAddressSpaceRejectsOverlap(t *testing.T) {
	_, err := NewAddressSpace([]Region{
		{Name: "a", Base: 0, Size: 4096},
		{Name: "b", Base: 2048, Size: 4096},
	}, knob.THPNever, 0)
	if err == nil {
		t.Fatal("expected overlap error")
	}
}

func TestAddressSpaceRejectsEmptyRegion(t *testing.T) {
	_, err := NewAddressSpace([]Region{{Name: "a", Base: 0, Size: 0}}, knob.THPNever, 0)
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestPageOfOutsideRegionPanics(t *testing.T) {
	as, _ := NewAddressSpace(regions(), knob.THPNever, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	as.PageOf(0, 1<<50)
}

func TestPageOfAlignmentProperty(t *testing.T) {
	as, _ := NewAddressSpace(regions(), knob.THPAlways, 0)
	f := func(off uint32) bool {
		addr := 1<<40 + uint64(off)%(512<<20)
		page, huge := as.PageOf(1, addr)
		if huge {
			return page%PageSize2M == 0 && addr-page < PageSize2M
		}
		return page%PageSize4K == 0 && addr-page < PageSize4K
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTLBAccess(b *testing.B) {
	tl := New(Geometry{ITLB4K: 128, ITLB2M: 8, DTLB4K: 64, DTLB2M: 32, STLB: 1536})
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.Access(uint64(src.Intn(1<<20))<<PageShift4K, false, Load)
	}
}
