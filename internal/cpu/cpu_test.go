package cpu

import (
	"math"
	"testing"
	"testing/quick"
)

func baseParams() Params {
	return Params{
		Width:         4,
		L2LatCycles:   11,
		LLCLatCycles:  40,
		MemLatCycles:  200,
		MispredictPen: 15,
	}
}

func TestIdealIPC(t *testing.T) {
	// No stalls at all: IPC approaches width x dispatch efficiency.
	r := Analyze(Counts{Instructions: 1e6}, baseParams())
	if r.IPC < 3.5 || r.IPC > 4.0 {
		t.Fatalf("stall-free IPC = %g", r.IPC)
	}
	if r.TopDown.Retiring < 0.85 {
		t.Fatalf("stall-free retiring = %g", r.TopDown.Retiring)
	}
}

func TestZeroInstructions(t *testing.T) {
	r := Analyze(Counts{}, baseParams())
	if r.IPC != 0 || r.Cycles != 0 || r.SMTBoost != 1 {
		t.Fatalf("zero-window result %+v", r)
	}
	if r.CoreIPS(2200) != 0 {
		t.Fatal("CoreIPS must be 0 with no work")
	}
}

func TestCodeMissesStallFrontEnd(t *testing.T) {
	c := Counts{Instructions: 1e6, CodeMem: 2000} // 2 LLC code MPKI
	r := Analyze(c, baseParams())
	if r.TopDown.FrontEnd < 0.2 {
		t.Fatalf("heavy code misses should show front-end stalls, got %+v", r.TopDown)
	}
	if r.IPC >= 3 {
		t.Fatalf("IPC %g should drop well below ideal", r.IPC)
	}
}

func TestDataMissesStallBackEnd(t *testing.T) {
	c := Counts{Instructions: 1e6, DataMem: 5000}
	r := Analyze(c, baseParams())
	if r.TopDown.BackEnd < 0.2 {
		t.Fatalf("heavy data misses should show back-end stalls, got %+v", r.TopDown)
	}
	if r.TopDown.FrontEnd > 0.05 {
		t.Fatalf("no code misses but front-end = %g", r.TopDown.FrontEnd)
	}
}

func TestCodeMissesCostMoreThanDataMisses(t *testing.T) {
	// §6.1(4): "the latency of code misses is not hidden and they incur
	// a greater penalty" — the CDP win's mechanism.
	code := Analyze(Counts{Instructions: 1e6, CodeMem: 1000}, baseParams())
	data := Analyze(Counts{Instructions: 1e6, DataMem: 1000}, baseParams())
	if code.Cycles <= data.Cycles {
		t.Fatalf("equal-count code misses must cost more: code=%g data=%g",
			code.Cycles, data.Cycles)
	}
	ratio := (code.Cycles - 1e6/4/0.9) / (data.Cycles - 1e6/4/0.9)
	if ratio < 2 {
		t.Fatalf("code/data miss penalty ratio %g, want >= 2", ratio)
	}
}

func TestBranchMispredicts(t *testing.T) {
	c := Counts{Instructions: 1e6, Branches: 2e5, Mispredicts: 10000}
	r := Analyze(c, baseParams())
	if r.TopDown.BadSpec < 0.05 {
		t.Fatalf("bad speculation too low: %+v", r.TopDown)
	}
	if r.BadSpecCycles != 150000 {
		t.Fatalf("badspec cycles = %g", r.BadSpecCycles)
	}
}

func TestTopDownSumsToOne(t *testing.T) {
	f := func(codeMem, dataMem, misp uint16) bool {
		c := Counts{
			Instructions: 1e6,
			CodeMem:      uint64(codeMem),
			DataMem:      uint64(dataMem),
			Mispredicts:  uint64(misp),
			CodeL2:       uint64(codeMem) * 3,
			DataL2:       uint64(dataMem) * 3,
		}
		td := Analyze(c, baseParams()).TopDown
		sum := td.Retiring + td.FrontEnd + td.BadSpec + td.BackEnd
		return math.Abs(sum-1) < 1e-9 &&
			td.Retiring >= 0 && td.FrontEnd >= 0 && td.BadSpec >= 0 && td.BackEnd >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemLatencySensitivity(t *testing.T) {
	// Raising memory latency (queueing, slower uncore) must lower IPC.
	c := Counts{Instructions: 1e6, DataMem: 5000, CodeMem: 500}
	fast := baseParams()
	slow := baseParams()
	slow.MemLatCycles = 400
	if Analyze(c, slow).IPC >= Analyze(c, fast).IPC {
		t.Fatal("higher memory latency must lower IPC")
	}
}

func TestFrequencyDiminishingReturns(t *testing.T) {
	// At higher core frequency, memory latency costs more cycles: the
	// speedup from 1.6->2.2 GHz is sublinear for memory-bound work
	// (the Fig 14a shape).
	c := Counts{Instructions: 1e6, DataMem: 8000, DataLLC: 8000}
	ips := func(mhz int) float64 {
		p := baseParams()
		// Memory latency is constant in ns; convert at each frequency.
		const memNS = 100.0
		p.MemLatCycles = memNS * float64(mhz) / 1000
		p.LLCLatCycles = 18 * float64(mhz) / 1000
		return Analyze(c, p).CoreIPS(mhz)
	}
	low, high := ips(1600), ips(2200)
	speedup := high / low
	if speedup <= 1.0 {
		t.Fatalf("higher frequency must still help: %g", speedup)
	}
	if speedup >= 2200.0/1600.0 {
		t.Fatalf("memory-bound speedup %g must be sublinear in frequency", speedup)
	}
	// A purely compute-bound workload scales ~linearly.
	compute := Counts{Instructions: 1e6}
	cLow := Analyze(compute, baseParams()).CoreIPS(1600)
	cHigh := Analyze(compute, baseParams()).CoreIPS(2200)
	if s := cHigh / cLow; math.Abs(s-2200.0/1600.0) > 1e-9 {
		t.Fatalf("compute-bound frequency scaling = %g", s)
	}
}

func TestSMTBoost(t *testing.T) {
	c := Counts{Instructions: 1e6, DataMem: 8000}
	p := baseParams()
	off := Analyze(c, p)
	p.SMT = true
	on := Analyze(c, p)
	if on.SMTBoost <= 1 || on.SMTBoost > smtMaxBoost {
		t.Fatalf("SMT boost = %g", on.SMTBoost)
	}
	if off.SMTBoost != 1 {
		t.Fatalf("SMT-off boost = %g", off.SMTBoost)
	}
	// Stall-heavy workloads gain more from SMT than lean ones.
	lean := Analyze(Counts{Instructions: 1e6}, p)
	if lean.SMTBoost >= on.SMTBoost {
		t.Fatalf("stally workload should gain more: lean=%g stally=%g",
			lean.SMTBoost, on.SMTBoost)
	}
}

func TestTLBWalkCycles(t *testing.T) {
	c := Counts{Instructions: 1e6, ITLBWalkCycles: 50000, DTLBWalkCycles: 50000}
	r := Analyze(c, baseParams())
	base := Analyze(Counts{Instructions: 1e6}, baseParams())
	if r.Cycles <= base.Cycles {
		t.Fatal("TLB walks must add cycles")
	}
	// Walk latency is mostly overlapped; only a fraction is exposed.
	if got := r.FrontEndCycles - base.FrontEndCycles; got != 50000*itlbExpose {
		t.Fatalf("ITLB walk attribution: %g", got)
	}
	if got := r.BackEndCycles - base.BackEndCycles; got != 50000*dtlbExpose {
		t.Fatalf("DTLB walk attribution: %g", got)
	}
}

func TestCountsAdd(t *testing.T) {
	a := Counts{Instructions: 10, CodeL2: 1, DataMem: 2, Mispredicts: 3}
	a.Add(Counts{Instructions: 5, CodeL2: 2, DataMem: 1, ITLBWalkCycles: 7})
	if a.Instructions != 15 || a.CodeL2 != 3 || a.DataMem != 3 || a.ITLBWalkCycles != 7 || a.Mispredicts != 3 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestDepStallLowersIPC(t *testing.T) {
	p := baseParams()
	p.DepStallCPI = 0.3
	withDep := Analyze(Counts{Instructions: 1e6}, p)
	without := Analyze(Counts{Instructions: 1e6}, baseParams())
	if withDep.IPC >= without.IPC {
		t.Fatal("dependency stalls must lower IPC")
	}
}

func TestDefaultWidth(t *testing.T) {
	r := Analyze(Counts{Instructions: 1000}, Params{})
	if r.IPC <= 0 {
		t.Fatal("zero-value params must still work (default width)")
	}
}
