// Package cpu implements the cycle-accounting core model that turns
// measured memory-hierarchy event counts into cycles, IPC, and the
// Top-down Microarchitecture Analysis (TMAM) slot breakdown the paper
// uses in §2.4.1 (Fig 7).
//
// The model mirrors how TMAM attributes lost pipeline slots:
// front-end stalls from instruction fetch misses (barely hidden by the
// decoupled front end), bad speculation from branch-misprediction
// recovery, back-end stalls from data misses (substantially overlapped
// by out-of-order execution and memory-level parallelism) and
// dependency chains, and retiring for useful work.
package cpu

import "fmt"

// Counts are the per-window event totals the simulator measures by
// driving workload streams through the cache/TLB models.
type Counts struct {
	Instructions uint64

	Branches    uint64
	Mispredicts uint64

	// Code fetch accesses satisfied at each level beyond L1.
	CodeL2, CodeLLC, CodeMem uint64
	// Data load accesses satisfied at each level beyond L1.
	DataL2, DataLLC, DataMem uint64
	// Data store accesses satisfied at each level beyond L1. Store
	// misses drain through the store buffer and overlap almost fully.
	StoreL2, StoreLLC, StoreMem uint64

	// Page-walk cycles charged by the TLB model.
	ITLBWalkCycles uint64
	DTLBWalkCycles uint64

	// Direct context-switch cost in cycles (register/state save,
	// scheduler path), charged by the scheduler model.
	CtxSwitchCycles uint64
}

// Add accumulates other into c.
func (c *Counts) Add(o Counts) {
	c.Instructions += o.Instructions
	c.Branches += o.Branches
	c.Mispredicts += o.Mispredicts
	c.CodeL2 += o.CodeL2
	c.CodeLLC += o.CodeLLC
	c.CodeMem += o.CodeMem
	c.DataL2 += o.DataL2
	c.DataLLC += o.DataLLC
	c.DataMem += o.DataMem
	c.StoreL2 += o.StoreL2
	c.StoreLLC += o.StoreLLC
	c.StoreMem += o.StoreMem
	c.ITLBWalkCycles += o.ITLBWalkCycles
	c.DTLBWalkCycles += o.DTLBWalkCycles
	c.CtxSwitchCycles += o.CtxSwitchCycles
}

// Params parameterize the pipeline and the (configuration-dependent)
// latencies of the hierarchy levels, all in core cycles.
type Params struct {
	Width         int     // pipeline slots per cycle
	L2LatCycles   float64 // L1-miss L2-hit penalty
	LLCLatCycles  float64 // L2-miss LLC-hit penalty (uncore-scaled)
	MemLatCycles  float64 // LLC-miss memory penalty (load- and uncore-dependent)
	MispredictPen float64 // recovery cycles per mispredicted branch
	DepStallCPI   float64 // workload-inherent dependency stalls per instruction
	BEOverlap     float64 // exposed fraction of data-miss latency (0 = default)
	SMT           bool    // simultaneous multithreading active (2 threads/core)
}

// Attribution constants. Short fetch misses are substantially hidden
// by the decoupled front end (fetch/decode queues); the deeper the
// miss, the more of its latency reaches the pipeline. Data-miss
// latency is overlapped by out-of-order execution and MLP.
const (
	feExposeL2  = 0.20 // exposed fraction of an L2-hit code miss
	feExposeLLC = 0.25 // exposed fraction of an LLC-hit code miss
	feExposeMem = 0.95 // exposed fraction of a memory code miss
	// DefaultBEOverlap is the exposed fraction of data-miss latency
	// when Params.BEOverlap is zero; workloads with deep memory-level
	// parallelism (vector crunching) override it downward.
	DefaultBEOverlap = 0.22
	itlbExpose       = 0.30 // exposed fraction of instruction page-walk cycles
	dtlbExpose       = 0.12 // exposed fraction of data page-walk cycles
	storeOverlap     = 0.05 // exposed fraction of store-miss latency
	baseDisp         = 0.90 // dispatch efficiency on unstalled cycles
	smtHideGain      = 0.40 // fraction of a thread's stall cycles the sibling fills
	smtMaxBoost      = 1.35 // cap on SMT core-throughput gain
)

// TopDown is the Fig 7 pipeline-slot breakdown; fractions sum to 1.
type TopDown struct {
	Retiring float64
	FrontEnd float64
	BadSpec  float64
	BackEnd  float64
}

// String renders the breakdown as percentages.
func (t TopDown) String() string {
	return fmt.Sprintf("retiring=%.0f%% frontend=%.0f%% badspec=%.0f%% backend=%.0f%%",
		t.Retiring*100, t.FrontEnd*100, t.BadSpec*100, t.BackEnd*100)
}

// Result is the core model's output for one measurement window.
type Result struct {
	Cycles   float64 // total core cycles for Counts.Instructions
	IPC      float64 // per-thread instructions per cycle
	SMTBoost float64 // core throughput multiplier from SMT (1 if off)
	TopDown  TopDown

	// Stall components in cycles, for diagnostics and tests.
	BaseCycles     float64
	FrontEndCycles float64
	BadSpecCycles  float64
	BackEndCycles  float64
}

// CoreIPS returns one core's instruction throughput at the given
// frequency, including the SMT boost.
func (r Result) CoreIPS(freqMHz int) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return r.IPC * r.SMTBoost * float64(freqMHz) * 1e6
}

// Analyze converts event counts into cycles and the TMAM breakdown.
func Analyze(c Counts, p Params) Result {
	if p.Width <= 0 {
		p.Width = 4
	}
	instr := float64(c.Instructions)
	if instr == 0 {
		return Result{SMTBoost: 1}
	}

	base := instr / (float64(p.Width) * baseDisp)

	frontend := feExposeL2*float64(c.CodeL2)*p.L2LatCycles +
		feExposeLLC*float64(c.CodeLLC)*p.LLCLatCycles +
		feExposeMem*float64(c.CodeMem)*p.MemLatCycles +
		itlbExpose*float64(c.ITLBWalkCycles)

	badspec := float64(c.Mispredicts) * p.MispredictPen

	beOverlap := p.BEOverlap
	if beOverlap == 0 {
		beOverlap = DefaultBEOverlap
	}
	backend := beOverlap*(float64(c.DataL2)*p.L2LatCycles+
		float64(c.DataLLC)*p.LLCLatCycles+
		float64(c.DataMem)*p.MemLatCycles) +
		storeOverlap*(float64(c.StoreL2)*p.L2LatCycles+
			float64(c.StoreLLC)*p.LLCLatCycles+
			float64(c.StoreMem)*p.MemLatCycles) +
		dtlbExpose*float64(c.DTLBWalkCycles) +
		p.DepStallCPI*instr

	// Context-switch direct cost executes kernel code: charge it as
	// front-end-heavy OS time (register save/restore plus scheduler
	// path is fetch-bound on cold code).
	frontend += float64(c.CtxSwitchCycles)

	cycles := base + frontend + badspec + backend
	ipc := instr / cycles

	boost := 1.0
	if p.SMT {
		stallFrac := (frontend + badspec + backend) / cycles
		boost = 1 + smtHideGain*stallFrac*2 // sibling fills some stall slots
		if boost > smtMaxBoost {
			boost = smtMaxBoost
		}
	}

	slots := cycles * float64(p.Width)
	retiring := instr / slots
	lost := 1 - retiring
	stall := frontend + badspec + backend
	td := TopDown{Retiring: retiring}
	if stall > 0 {
		// Distribute non-retiring slots across stall causes, folding
		// the dispatch-inefficiency share of base cycles into the
		// back end (it is resource-bound in TMAM terms).
		slack := base - instr/float64(p.Width)
		total := stall + slack
		td.FrontEnd = lost * frontend / total
		td.BadSpec = lost * badspec / total
		td.BackEnd = lost * (backend + slack) / total
	} else {
		td.BackEnd = lost
	}

	return Result{
		Cycles:         cycles,
		IPC:            ipc,
		SMTBoost:       boost,
		TopDown:        td,
		BaseCycles:     base,
		FrontEndCycles: frontend,
		BadSpecCycles:  badspec,
		BackEndCycles:  backend,
	}
}
