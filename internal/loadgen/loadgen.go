// Package loadgen models production traffic dynamics: the diurnal
// load swings and transient fluctuations µSKU must measure through
// (§4: "capturing behavior in production systems facing diurnal or
// transient load fluctuations"). A/B tests compare two servers in the
// same fleet facing the *same* load, so one shared Profile drives
// both sides of every comparison.
package loadgen

import (
	"math"

	"softsku/internal/chaos"
	"softsku/internal/rng"
)

// Profile generates the load factor over virtual time: a multiplier
// around 1.0 applied to a service's peak-rated utilization.
type Profile struct {
	// Period of the diurnal cycle in seconds (86400 for a real day;
	// tests compress it).
	Period float64
	// Swing is the peak-to-trough amplitude of the diurnal component
	// (e.g. 0.15 → ±15%).
	Swing float64
	// Jitter is the standard deviation of transient load fluctuation,
	// modelled as a mean-reverting random walk.
	Jitter float64

	src   *rng.Source
	walk  float64
	lastT float64
	chaos chaos.Injector // nil: no injected spikes
}

// NewDiurnal builds the default production-like load profile.
func NewDiurnal(seed uint64) *Profile {
	return &Profile{
		Period: 86400,
		Swing:  0.15,
		Jitter: 0.03,
		src:    rng.New(seed),
	}
}

// Flat returns a constant-load profile (synthetic load tests — the
// thing the paper warns does not capture production behaviour). It
// consumes no randomness: Factor is constant, and Arrivals hardens a
// missing source lazily.
func Flat() *Profile { return &Profile{Period: 1, Swing: 0, Jitter: 0} }

// SetChaos attaches a fault injector whose LoadSpike factor multiplies
// the profile: sudden traffic surges on top of the diurnal cycle, the
// load drift µSKU's A/B tester must measure through (§4). nil (the
// default) disables spikes.
func (p *Profile) SetChaos(inj chaos.Injector) { p.chaos = inj }

// Factor returns the load multiplier at virtual time t. Successive
// calls should use non-decreasing t; the transient component evolves
// with the time delta (an Ornstein-Uhlenbeck-style mean-reverting
// walk).
func (p *Profile) Factor(t float64) float64 {
	diurnal := 0.0
	if p.Swing > 0 && p.Period > 0 {
		diurnal = p.Swing * math.Sin(2*math.Pi*t/p.Period)
	}
	if p.Jitter > 0 && p.src != nil {
		dt := t - p.lastT
		if dt < 0 {
			dt = 0
		}
		p.lastT = t
		// Mean-revert with ~60 s correlation time.
		const tau = 60.0
		decay := math.Exp(-dt / tau)
		p.walk = p.walk*decay + p.src.Norm(0, p.Jitter*math.Sqrt(1-decay*decay))
	}
	f := 1 + diurnal + p.walk
	if p.chaos != nil {
		f *= p.chaos.LoadSpike(t)
	}
	if f < 0.05 {
		f = 0.05
	}
	return f
}

// Arrivals returns the number of Poisson arrivals in a window of
// length dt seconds at the given mean rate, for callers generating
// open-loop traffic outside the event simulator.
func (p *Profile) Arrivals(rate, dt float64) int {
	if p.src == nil {
		p.src = rng.New(1)
	}
	return p.src.Poisson(rate * dt)
}
