package loadgen

import (
	"math"
	"testing"

	"softsku/internal/chaos"
)

func TestFlatIsConstant(t *testing.T) {
	p := Flat()
	for _, tm := range []float64{0, 10, 1000, 86400} {
		if got := p.Factor(tm); got != 1 {
			t.Fatalf("flat factor at %g = %g", tm, got)
		}
	}
}

func TestDiurnalCycle(t *testing.T) {
	p := NewDiurnal(1)
	p.Jitter = 0 // isolate the deterministic component
	peak := p.Factor(86400.0 / 4)
	trough := p.Factor(3 * 86400.0 / 4)
	if math.Abs(peak-1.15) > 1e-9 || math.Abs(trough-0.85) > 1e-9 {
		t.Fatalf("diurnal extremes: peak=%g trough=%g", peak, trough)
	}
}

func TestJitterBoundedAndMeanReverting(t *testing.T) {
	p := NewDiurnal(7)
	p.Swing = 0 // isolate jitter
	sum, n := 0.0, 0
	for tm := 0.0; tm < 36000; tm += 10 {
		f := p.Factor(tm)
		if f < 0.5 || f > 1.5 {
			t.Fatalf("jitter escaped: %g at %g", f, tm)
		}
		sum += f
		n++
	}
	if mean := sum / float64(n); math.Abs(mean-1) > 0.02 {
		t.Fatalf("jitter not mean-reverting: mean %g", mean)
	}
}

func TestFactorDeterministicPerSeed(t *testing.T) {
	a, b := NewDiurnal(3), NewDiurnal(3)
	for tm := 0.0; tm < 1000; tm += 13 {
		if a.Factor(tm) != b.Factor(tm) {
			t.Fatal("same seed must give identical load traces")
		}
	}
	c := NewDiurnal(4)
	same := true
	for tm := 0.0; tm < 1000; tm += 13 {
		if a.Factor(tm) != c.Factor(tm) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestFactorFloor(t *testing.T) {
	p := &Profile{Period: 100, Swing: 5, Jitter: 0} // absurd swing
	if got := p.Factor(75); got < 0.05 {
		t.Fatalf("factor must be floored: %g", got)
	}
}

func TestArrivalsMean(t *testing.T) {
	p := Flat()
	total := 0
	const windows = 10000
	for i := 0; i < windows; i++ {
		total += p.Arrivals(100, 0.1) // mean 10 per window
	}
	mean := float64(total) / windows
	if math.Abs(mean-10) > 0.2 {
		t.Fatalf("arrival mean %g, want ~10", mean)
	}
}

func TestChaosLoadSpikes(t *testing.T) {
	cfg := chaos.DefaultConfig()
	cfg.SpikePct = 1 // a spike in every window
	base := NewDiurnal(1)
	spiky := NewDiurnal(1)
	spiky.SetChaos(chaos.New(3, cfg))
	spikes := 0
	for tm := 0.0; tm < 86400; tm += 60 {
		b, s := base.Factor(tm), spiky.Factor(tm)
		if s < b-1e-9 {
			t.Fatalf("spike must never reduce load: %g < %g at t=%g", s, b, tm)
		}
		if s > b+1e-9 {
			spikes++
			if math.Abs(s-b*(1+cfg.SpikeMag)) > 1e-9 {
				t.Fatalf("spike factor %g, want %g", s/b, 1+cfg.SpikeMag)
			}
		}
	}
	if spikes == 0 {
		t.Fatal("SpikePct=1 must produce spikes across a day")
	}
}

func TestChaosSpikeDeterminism(t *testing.T) {
	mk := func() *Profile {
		p := NewDiurnal(1)
		p.SetChaos(chaos.New(7, chaos.DefaultConfig()))
		return p
	}
	a, b := mk(), mk()
	for tm := 0.0; tm < 86400; tm += 300 {
		if fa, fb := a.Factor(tm), b.Factor(tm); fa != fb {
			t.Fatalf("same seeds must spike identically: %g vs %g at t=%g", fa, fb, tm)
		}
	}
}

func TestNilChaosUnchanged(t *testing.T) {
	// A profile without an injector must behave exactly as before the
	// chaos layer existed.
	a, b := NewDiurnal(5), NewDiurnal(5)
	b.SetChaos(nil)
	for tm := 0.0; tm < 7200; tm += 30 {
		if a.Factor(tm) != b.Factor(tm) {
			t.Fatal("nil injector must be a no-op")
		}
	}
}
