#!/bin/sh
# Repo-wide health check: formatting, vet, build, and the full test
# suite under the race detector. Run via `make check` or directly.
# Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== softskulint =="
# Project-specific invariants (DESIGN.md §9): seeded determinism,
# constant metric names, never-dropped knob errors, closed trace
# spans, caller-controlled randomness. Prints a one-line summary so
# the log shows the gate ran; any finding fails the check.
go run ./cmd/softskulint ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
# The race detector is 5-20x slower than a plain run; on small CI
# boxes the sim package alone can blow go test's default 10m
# per-package timeout, so give it explicit headroom. -shuffle=on
# randomizes test order so hidden inter-test dependencies surface
# here instead of in a future refactor (the seed is printed on
# failure for replay with -shuffle=<seed>). This pass is also the
# serial/parallel equivalence gate: internal/core's
# TestParallelSweepBitIdentical* run -parallel=1 vs 8 (chaos off and
# on) under the race detector and require identical Result structs,
# logs, and fault fingerprints.
go test -race -shuffle=on -timeout 45m ./...

echo "== chaos smoke =="
out=$(go run ./cmd/musku -service Web -knobs thp -chaos -chaos-seed 7 -guardrail-pct 2 -max-samples 1500 -q)
if ! echo "$out" | grep -q "soft SKU:"; then
	echo "chaos smoke: tuning under injected faults composed no soft SKU" >&2
	echo "$out" >&2
	exit 1
fi
echo "$out" | grep "soft SKU:"

echo "== sim-cache equivalence smoke =="
# The characterization cache must be invisible in results: the same
# short tuning run with the cache on (default) and off has to emit
# byte-identical JSON. Complements internal/core's
# TestSimCacheBitIdentical (which also covers -parallel and chaos).
cached=$(go run ./cmd/musku -service Web -knobs thp,shp -max-samples 1500 -seed 3 -q -json)
uncached=$(go run ./cmd/musku -service Web -knobs thp,shp -max-samples 1500 -seed 3 -q -json -sim-cache=off)
if [ "$cached" != "$uncached" ]; then
	echo "sim-cache smoke: cached and uncached runs diverged" >&2
	echo "--- cached ---" >&2
	echo "$cached" >&2
	echo "--- uncached ---" >&2
	echo "$uncached" >&2
	exit 1
fi
echo "cached and uncached runs identical"

echo "check: all green"
