#!/bin/sh
# Repo-wide health check: formatting, vet, build, and the full test
# suite under the race detector. Run via `make check` or directly.
# Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== softskulint =="
# Project-specific invariants (DESIGN.md §9, §14): seeded determinism,
# constant metric names, never-dropped knob errors, closed trace
# spans, caller-controlled randomness, and the module-wide detflow
# call-graph taint gate (no sim-facing export may transitively reach a
# nondeterminism source). Runs in -json so the findings stay machine-
# readable in CI logs; any finding fails the check, and the extracted
# summary line shows the gate ran (including suppressed/stale counts).
if ! lint_json=$(go run ./cmd/softskulint -json ./...); then
	echo "softskulint findings:" >&2
	echo "$lint_json" >&2
	exit 1
fi
echo "$lint_json" | sed -n 's/^  "summary": "\(.*\)",*$/\1/p'

echo "== go build =="
go build ./...

echo "== go test -race =="
# The race detector is 5-20x slower than a plain run; on small CI
# boxes the sim package alone can blow go test's default 10m
# per-package timeout, so give it explicit headroom. -shuffle=on
# randomizes test order so hidden inter-test dependencies surface
# here instead of in a future refactor (the seed is printed on
# failure for replay with -shuffle=<seed>). This pass is also the
# serial/parallel equivalence gate: internal/core's
# TestParallelSweepBitIdentical* run -parallel=1 vs 8 (chaos off and
# on) under the race detector and require identical Result structs,
# logs, and fault fingerprints.
go test -race -shuffle=on -timeout 45m ./...

echo "== chaos smoke =="
out=$(go run ./cmd/musku -service Web -knobs thp -chaos -chaos-seed 7 -guardrail-pct 2 -max-samples 1500 -q)
if ! echo "$out" | grep -q "soft SKU:"; then
	echo "chaos smoke: tuning under injected faults composed no soft SKU" >&2
	echo "$out" >&2
	exit 1
fi
echo "$out" | grep "soft SKU:"

echo "== sim-cache equivalence smoke =="
# The characterization cache must be invisible in results: the same
# short tuning run with the cache on (default) and off has to emit
# byte-identical JSON. Complements internal/core's
# TestSimCacheBitIdentical (which also covers -parallel and chaos).
cached=$(go run ./cmd/musku -service Web -knobs thp,shp -max-samples 1500 -seed 3 -q -json)
uncached=$(go run ./cmd/musku -service Web -knobs thp,shp -max-samples 1500 -seed 3 -q -json -sim-cache=off)
if [ "$cached" != "$uncached" ]; then
	echo "sim-cache smoke: cached and uncached runs diverged" >&2
	echo "--- cached ---" >&2
	echo "$cached" >&2
	echo "--- uncached ---" >&2
	echo "$uncached" >&2
	exit 1
fi
echo "cached and uncached runs identical"

echo "== observability serve smoke =="
# A real musku run with the live server attached: the scrape endpoints
# must come up, /metrics must carry the softsku_ namespace, and the
# finished run's decision ledger must be visible at /debug/decisions
# and in the -decisions-out JSONL.
if command -v curl >/dev/null 2>&1 || command -v wget >/dev/null 2>&1; then
	fetch() {
		if command -v curl >/dev/null 2>&1; then
			curl -sf "$1"
		else
			wget -qO- "$1"
		fi
	}
	obsdir=$(mktemp -d)
	go build -o "$obsdir/musku" ./cmd/musku
	"$obsdir/musku" -service Web -knobs thp -max-samples 1500 -q \
		-serve 127.0.0.1:0 -decisions-out "$obsdir/decisions.jsonl" \
		>/dev/null 2>"$obsdir/err.log" &
	musku_pid=$!
	trap 'kill "$musku_pid" 2>/dev/null || true; rm -rf "$obsdir"' EXIT
	# The resolved address (the port of -serve :0) prints once the run
	# finishes and the server stays up to be scraped.
	addr=""
	tries=0
	while [ "$tries" -lt 120 ]; do
		addr=$(sed -n 's#.*serving observability on http://\([^ ]*\).*#\1#p' "$obsdir/err.log")
		[ -n "$addr" ] && break
		if ! kill -0 "$musku_pid" 2>/dev/null; then
			break
		fi
		sleep 1
		tries=$((tries + 1))
	done
	if [ -z "$addr" ]; then
		echo "observability smoke: musku never announced its server" >&2
		cat "$obsdir/err.log" >&2
		exit 1
	fi
	if ! fetch "http://$addr/metrics" | grep -q "^# TYPE softsku_"; then
		echo "observability smoke: /metrics has no softsku_ families" >&2
		exit 1
	fi
	if ! fetch "http://$addr/debug/decisions?n=0" | grep -q '"kind":"run_finished"'; then
		echo "observability smoke: /debug/decisions lacks the run_finished event" >&2
		exit 1
	fi
	if ! grep -q '"kind":"run_started"' "$obsdir/decisions.jsonl"; then
		echo "observability smoke: -decisions-out ledger lacks run_started" >&2
		exit 1
	fi
	echo "served /metrics and /debug/decisions for a live run ($addr)"
	kill "$musku_pid" 2>/dev/null || true
	rm -rf "$obsdir"
	trap - EXIT
else
	echo "observability smoke: skipped (neither curl nor wget available)"
fi

echo "== fleet soak smoke =="
# Two same-seed controller soaks under sustained chaos at different
# -parallel counts must both converge and write byte-identical
# decision ledgers: the self-healing control loop's determinism
# contract, end to end through drift detection, re-tuning, rollouts,
# breakers, quarantine, and degraded mode. Scaled down from
# `make soak` (240 servers, 10 epochs) to keep the check fast.
soakdir=$(mktemp -d)
go build -o "$soakdir/fleetd" ./cmd/fleetd
"$soakdir/fleetd" -chaos -chaos-seed 99 -seed 42 -servers 240 -epochs 10 \
	-parallel 2 -q -ledger-out "$soakdir/a.jsonl" >"$soakdir/a.txt"
"$soakdir/fleetd" -chaos -chaos-seed 99 -seed 42 -servers 240 -epochs 10 \
	-parallel 8 -q -ledger-out "$soakdir/b.jsonl" >"$soakdir/b.txt"
if ! cmp -s "$soakdir/a.jsonl" "$soakdir/b.jsonl"; then
	echo "fleet soak smoke: same-seed soak ledgers diverged across -parallel" >&2
	exit 1
fi
if ! grep -q '"kind":"epoch_done"' "$soakdir/a.jsonl"; then
	echo "fleet soak smoke: ledger has no epoch_done events" >&2
	exit 1
fi
sed -n 's/^state:  */fleet soak: /p' "$soakdir/a.txt"
rm -rf "$soakdir"

echo "== adaptive search smoke =="
# A tiny successive-halving tune, run twice at different -parallel
# counts: both runs must find the same soft SKU and write byte-
# identical decision ledgers (the Searcher determinism contract, end
# to end through the CLI), and the ledger must carry the halving-
# specific rung_advanced events plus a clean run_finished.
srchdir=$(mktemp -d)
go build -o "$srchdir/musku" ./cmd/musku
"$srchdir/musku" -service Web -knobs thp,shp -search halving -max-samples 1500 \
	-parallel 1 -q -decisions-out "$srchdir/a.jsonl" >"$srchdir/a.txt"
"$srchdir/musku" -service Web -knobs thp,shp -search halving -max-samples 1500 \
	-parallel 8 -q -decisions-out "$srchdir/b.jsonl" >"$srchdir/b.txt"
if ! cmp -s "$srchdir/a.jsonl" "$srchdir/b.jsonl"; then
	echo "search smoke: same-seed halving ledgers diverged across -parallel" >&2
	exit 1
fi
if ! grep -q '"kind":"rung_advanced"' "$srchdir/a.jsonl"; then
	echo "search smoke: halving ledger has no rung_advanced events" >&2
	exit 1
fi
if ! grep -q '"kind":"run_finished"' "$srchdir/a.jsonl"; then
	echo "search smoke: halving ledger never finished" >&2
	exit 1
fi
sed -n 's/^soft SKU:  */search smoke (halving): /p' "$srchdir/a.txt"
rm -rf "$srchdir"

echo "== twin-pruned search smoke =="
# A twin-armed hill climb run twice: prune decisions come from the
# calibrated analytical twin (DESIGN.md §16), so both runs must compose
# the same soft SKU and write byte-identical ledgers — including the
# twin_pruned events that record every arm discarded on a prediction
# alone. One process per run, exactly like production: the ladder's
# answers depend on simcache state, which is fixed per process.
twindir=$(mktemp -d)
go build -o "$twindir/musku" ./cmd/musku
"$twindir/musku" -service Web -knobs thp,shp,corefreq -search hill -twin \
	-max-samples 1500 -q -decisions-out "$twindir/a.jsonl" >"$twindir/a.txt"
"$twindir/musku" -service Web -knobs thp,shp,corefreq -search hill -twin \
	-max-samples 1500 -q -decisions-out "$twindir/b.jsonl" >"$twindir/b.txt"
if ! cmp -s "$twindir/a.jsonl" "$twindir/b.jsonl"; then
	echo "twin smoke: same-seed twin-pruned ledgers diverged between runs" >&2
	exit 1
fi
if ! grep -q '"kind":"twin_pruned"' "$twindir/a.jsonl"; then
	echo "twin smoke: twin-armed hill climb pruned nothing" >&2
	exit 1
fi
pruned=$(grep -c '"kind":"twin_pruned"' "$twindir/a.jsonl")
sed -n "s/^soft SKU:  */twin smoke (hill, $pruned arms pruned): /p" "$twindir/a.txt"
rm -rf "$twindir"

echo "== skutrace replay smoke =="
# Counterfactual replay straight off a recorded ledger: re-judge a
# mips-objective run under p99 without re-running the simulator.
repdir=$(mktemp -d)
go run ./cmd/musku -service Web -knobs thp,shp -max-samples 1500 -q \
	-decisions-out "$repdir/run.jsonl" >/dev/null
replay=$(go run ./cmd/skutrace replay -metric p99 "$repdir/run.jsonl" || true)
if ! echo "$replay" | grep -q "replayed p99"; then
	echo "skutrace smoke: replay produced no p99 report" >&2
	echo "$replay" >&2
	rm -rf "$repdir"
	exit 1
fi
echo "$replay" | head -2
rm -rf "$repdir"

echo "check: all green"
