// Package softsku reproduces "SoftSKU: Optimizing Server Architectures
// for Microservice Diversity @Scale" (Sriraman, Dhanotia, Wenisch —
// ISCA 2019) as a self-contained Go library.
//
// The paper makes two contributions, both implemented here:
//
//   - A characterization of the seven key microservices on Facebook's
//     compute-optimized fleet (Web, Feed1, Feed2, Ads1, Ads2, Cache1,
//     Cache2), exposing extreme diversity in OS interaction, cache and
//     TLB behaviour, instruction mix, and pipeline bottlenecks.
//
//   - µSKU, a design tool that creates microservice-specific "soft
//     SKUs" on fixed hardware by A/B-testing seven coarse-grain
//     configuration knobs (core/uncore frequency, core count, LLC
//     code/data prioritization, hardware prefetchers, transparent and
//     static huge pages) on live traffic.
//
// Since the production fleet is not available, the library includes a
// complete simulated substrate: parameterized Skylake/Broadwell server
// platforms, execution-driven cache/TLB/prefetcher models, a DRAM
// bandwidth-latency queueing model, a top-down cycle-accounting core
// model, synthetic microservice workloads calibrated to the paper's
// published characterization, a discrete-event request simulator, and
// EMON/ODS-style measurement infrastructure. DESIGN.md documents every
// substitution; EXPERIMENTS.md records paper-vs-measured results for
// every table and figure.
//
// # Quick start
//
//	svc, _ := softsku.ServiceByName("Web")
//	char, _ := softsku.Characterize(svc.Name, softsku.Seed(1))
//	fmt.Println(char)                      // IPC, MPKI, top-down, ...
//
//	in := softsku.DefaultTuneInput("Web", "Skylake18")
//	res, _ := softsku.Tune(in)             // run µSKU
//	fmt.Println(res.SoftSKU)               // the composed soft SKU
//
// The examples/ directory contains runnable programs, and the
// root-level benchmarks (go test -bench=.) regenerate every table and
// figure of the paper's evaluation.
package softsku
