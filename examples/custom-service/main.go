// Custom-service shows the library's extension point: define a
// microservice that is NOT one of the paper's seven — here a
// search-style leaf with a large inverted-index working set — then
// characterize it and let µSKU design its soft SKU. This is the §6.2
// promise that µSKU "can be applied to microservices that do not have
// dedicated performance tuning engineers".
//
// Run with:
//
//	go run ./examples/custom-service
package main

import (
	"fmt"
	"log"
	"os"

	"softsku"
	"softsku/internal/knob"
	"softsku/internal/workload"
)

// searchLeaf models a retrieval leaf: compute-bound scoring loops over
// posting lists (streaming, prefetch-friendly), a large shared index
// (LLC-contended), tight tail-latency QoS, and no huge-page tuning so
// far — exactly the kind of service µSKU exists for.
func searchLeaf() *softsku.Service {
	return &softsku.Service{
		Name:     "SearchLeaf",
		Domain:   "search",
		Platform: "Skylake18",

		PathLength:        40e6,
		RunningFrac:       0.93,
		DownstreamCalls:   0,
		DownstreamLatency: 0,
		WorkerThreads:     48,

		MaxCPUUtil:    0.60,
		KernelFrac:    0.06,
		QoSLatencyP99: 0.08,

		CtxSwitchRate: 500,

		Mix:              workload.InstructionMix{Branch: 14, FP: 8, Arith: 34, Load: 30, Store: 14},
		BranchMispredict: 0.015,

		CodeFootprint: 48 << 20,
		CodeHot:       workload.Tier{Frac: 0.72, Bytes: 20 << 10},
		CodeMid:       workload.Tier{Frac: 0.20, Bytes: 640 << 10},
		CodeWarm:      workload.Tier{Frac: 0.075, Bytes: 2 << 20},
		CodeSeqFrac:   0.66,
		CodePools:     1,

		DataFootprint: 24 << 30, // the inverted index
		DataHot:       workload.Tier{Frac: 0.86, Bytes: 12 << 10},
		DataMid:       workload.Tier{Frac: 0.07, Bytes: 640 << 10},
		DataWarm:      workload.Tier{Frac: 0.05, Bytes: 10 << 20},
		DataSeqFrac:   0.30, // posting-list traversal
		SeqStride:     16,
		SeqSpan:       64 << 20,
		PrivateFrac:   0.03,
		PrivateBytes:  512 << 10,
		StackFrac:     0.08,

		SHPHeap:     128 << 20, // index arena eligible for static huge pages
		HeapMadvise: false,
		Burstiness:  0.10,

		DepStallCPI:    0.18,
		BEOverlap:      0.15,
		RebootTolerant: true,
	}
}

func main() {
	svc := searchLeaf()
	if err := svc.Validate(); err != nil {
		log.Fatal(err)
	}

	// Characterize it like any fleet service.
	sku := softsku.Skylake18()
	srv, err := softsku.NewServer(sku, softsku.ProductionConfig(sku, svc))
	if err != nil {
		log.Fatal(err)
	}
	m, err := softsku.NewMachine(srv, svc, 1)
	if err != nil {
		log.Fatal(err)
	}
	op := m.SolvePeak()
	fmt.Printf("%s at peak: IPC=%.2f MIPS=%.0f bw=%.1f GB/s lat=%.0f ns\n",
		svc.Name, op.IPC, op.MIPS, op.MemBWGBs, op.MemLatencyNS)

	// Let µSKU design its soft SKU over the huge-page and CDP knobs.
	in := softsku.DefaultTuneInput(svc.Name, "Skylake18")
	in.Knobs = []knob.ID{knob.CDP, knob.THP, knob.SHP}
	in.AB.MinSamples = 200
	in.AB.MaxSamples = 2000
	tool, err := softsku.NewToolForService(in, svc, sku)
	if err != nil {
		log.Fatal(err)
	}
	tool.SetLogger(os.Stderr)
	res, err := tool.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- µSKU on a service the paper never saw ---")
	fmt.Print(softsku.FormatTuneMap(res))
	fmt.Printf("\nsoft SKU: %v\nvs production: %v\n", res.SoftSKU, res.VsProduction)
}
