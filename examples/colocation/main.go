// Colocation explores the paper's §7 future-work direction: today the
// fleet runs every microservice on dedicated bare metal, but if
// services were to share machines, a µSKU-aware scheduler would need
// to know which neighbours a service tolerates. This example builds
// that affinity matrix for a few service pairs.
//
// Run with:
//
//	go run ./examples/colocation
package main

import (
	"fmt"
	"log"

	"softsku"
)

func main() {
	sku := softsku.Skylake18()
	fmt.Printf("Co-location interference on %s (slowdown vs idle neighbour)\n\n", sku.Name)

	pairs := [][2]string{
		{"Web", "Web"},
		{"Web", "Feed1"},
		{"Web", "Cache2"},
		{"Feed1", "Feed2"},
		{"Cache2", "Cache2"},
	}
	type scored struct {
		label string
		worst float64
	}
	var ranking []scored
	for _, pr := range pairs {
		a, err := softsku.ServiceByName(pr[0])
		if err != nil {
			log.Fatal(err)
		}
		b, err := softsku.ServiceByName(pr[1])
		if err != nil {
			log.Fatal(err)
		}
		r, err := softsku.Colocate(sku, a, b, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", r)
		worst := r.SlowdownA
		if r.SlowdownB > worst {
			worst = r.SlowdownB
		}
		ranking = append(ranking, scored{fmt.Sprintf("%s+%s", r.A, r.B), worst})
	}

	best := ranking[0]
	for _, s := range ranking[1:] {
		if s.worst < best.worst {
			best = s
		}
	}
	fmt.Printf("\nfriendliest pairing: %s (worst-side slowdown %.2fx)\n", best.label, best.worst)
	fmt.Println("a µSKU-aware scheduler would prefer pairings like this when consolidating (§7).")
}
