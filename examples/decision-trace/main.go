// Decision-trace demonstrates the flight recorder and counterfactual
// replay: a tuning run records every decision — sweeps, trials,
// verdicts, accepted and rejected arms — into an append-only ledger
// with causal parent links and per-trial evidence moments. The ledger
// renders as a tree, exports as JSONL (musku -decisions-out, skutrace),
// and replays under a different objective WITHOUT re-running the
// simulator: here the same run is re-judged under tail latency (p99)
// instead of throughput (mips), surfacing every knob whose win would
// not have survived the counterfactual policy.
//
// Run with:
//
//	go run ./examples/decision-trace
package main

import (
	"fmt"
	"log"
	"os"

	"softsku"
)

func main() {
	in := softsku.DefaultTuneInput("Web", "Skylake18")
	in.AB.MinSamples = 150 // example-sized sampling budget
	in.AB.MaxSamples = 1500

	tool, err := softsku.NewTool(in)
	if err != nil {
		log.Fatal(err)
	}
	ledger := softsku.NewDecisionLedger()
	tool.SetRecorder(ledger)

	res, err := tool.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("soft SKU: %s\n", res.SoftSKU)
	fmt.Printf("vs production: %s\n\n", res.VsProduction)

	// The causal decision tree — what `skutrace tree` renders from a
	// -decisions-out file.
	fmt.Println("== decision trace ==")
	if err := softsku.WriteDecisionTree(os.Stdout, ledger.Events()); err != nil {
		log.Fatal(err)
	}

	// Counterfactual replay: re-judge every recorded trial under the
	// p99 objective (lower is better) from recorded evidence alone.
	rep, err := softsku.ReplayDecisions(ledger.Events(),
		softsku.DecisionObjective{Metric: "p99"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== counterfactual: what if the objective had been p99? ==")
	fmt.Print(rep.Summary())
}
