// Quickstart: profile one production microservice the way the paper's
// §2 characterization does, then let µSKU tune one knob for it.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"softsku"
	"softsku/internal/knob"
)

func main() {
	// 1. Characterize Web at its QoS-limited peak on its production
	// platform (Skylake18): IPC, MPKIs, top-down breakdown, request
	// latency anatomy — the numbers behind Figs 2-12.
	char, err := softsku.Characterize("Web", softsku.Seed(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- characterization ---")
	fmt.Println(char)
	fmt.Println()

	// 2. Ask µSKU to tune the transparent-huge-page policy. The tool
	// A/B-tests each policy against the hand-tuned production baseline
	// on simulated live traffic and composes the winner (§4).
	in := softsku.DefaultTuneInput("Web", "Skylake18")
	in.Knobs = []knob.ID{knob.THP}
	in.AB.MinSamples = 200 // quickstart-sized A/B budget
	in.AB.MaxSamples = 2000
	res, err := softsku.Tune(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- µSKU THP sweep ---")
	fmt.Print(softsku.FormatTuneMap(res))
	fmt.Printf("\nsoft SKU: %v\n", res.SoftSKU)
	fmt.Printf("vs production: %v\n", res.VsProduction)
}
