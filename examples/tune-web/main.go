// Tune-web runs the paper's headline experiment end to end: µSKU
// sweeps all seven knobs for the Web microservice on Skylake18,
// composes the soft SKU (the paper finds CDP {6,5}, THP always, and
// 300 static huge pages), validates it against hand-tuned production
// and stock servers (Fig 19), and then monitors the deployment across
// simulated code pushes via the ODS time-series store (§4).
//
// Run with:
//
//	go run ./examples/tune-web
//
// A full run takes a minute or two: the virtual fleet collects several
// virtual hours of A/B samples, just like the prototype's 5-10 hour
// tuning runs (§6.2).
package main

import (
	"fmt"
	"log"
	"os"

	"softsku"
)

func main() {
	in := softsku.DefaultTuneInput("Web", "Skylake18")
	in.AB.MinSamples = 200 // example-sized sampling budget
	in.AB.MaxSamples = 3000

	tool, err := softsku.NewTool(in)
	if err != nil {
		log.Fatal(err)
	}
	tool.SetLogger(os.Stderr) // watch the sweep live

	res, err := tool.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n--- design-space map ---")
	fmt.Print(softsku.FormatTuneMap(res))
	fmt.Println("\n--- result ---")
	fmt.Printf("production:    %v\n", res.Baseline)
	fmt.Printf("soft SKU:      %v\n", res.SoftSKU)
	fmt.Printf("vs production: %v   (paper: +4.5%%)\n", res.VsProduction)
	fmt.Printf("vs stock:      %v   (paper: +6.2%%)\n", res.VsStock)
	fmt.Printf("reboots: %d   virtual tuning time: %.1f h (paper: 5-10 h)\n",
		res.Reboots, res.VirtualHours)

	// Deployment validation: compare fleet QPS for the soft SKU vs
	// production across three code pushes, a diurnal cycle each.
	fmt.Println("\n--- deployment validation (ODS QPS across code pushes) ---")
	v, err := tool.Validate(res.SoftSKU, 3, 96)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range v.Pushes {
		fmt.Printf("push %d: soft %.0f QPS vs prod %.0f QPS (%+.2f%%)\n",
			p.Push, p.SoftQPS, p.ProdQPS, p.DeltaPct)
	}
	fmt.Printf("mean advantage %+.2f%%, stable across pushes: %v\n",
		v.MeanDeltaPct, v.StableAdvantage)
}
