// Fleet-rollout demonstrates the operational side of soft SKUs (§1,
// §3): a fleet with pools of fungible hardware, a bounded-availability
// rolling deployment of a µSKU-discovered configuration, redeployment
// of servers between services, and the capacity arithmetic that turns
// single-digit percent speedups into thousands of servers at scale.
//
// Run with:
//
//	go run ./examples/fleet-rollout
package main

import (
	"fmt"
	"log"

	"softsku"
	"softsku/internal/fleet"
	"softsku/internal/knob"
)

func main() {
	skl := softsku.Skylake18()
	web, _ := softsku.ServiceByName("Web")
	cache2, _ := softsku.ServiceByName("Cache2")

	// A (scaled-down) fleet: pools of identical Skylake18 servers.
	f := fleet.New()
	must(f.AddPool(web, skl, 400, softsku.ProductionConfig(skl, web)))
	must(f.AddPool(cache2, skl, 200, softsku.ProductionConfig(skl, cache2)))

	// 1. µSKU discovered Web's soft SKU (Fig 19): CDP {6,5}, THP
	// always, 300 SHPs. SHP changes require reboots, so the rollout
	// proceeds in waves bounded by allowed unavailability.
	soft := softsku.ProductionConfig(skl, web).
		With(knob.CDP, knob.CDPSetting(knob.CDPConfig{DataWays: 6, CodeWays: 5})).
		With(knob.THP, knob.THPSetting(knob.THPAlways)).
		With(knob.SHP, knob.IntSetting("300", 300))
	r, err := f.Rollout("Web", soft, 20) // ≤ 5% of the pool down at once
	must(err)
	fmt.Printf("rolled out Web soft SKU to %d servers in %d waves (%d reboots, ≤%d down at a time)\n",
		r.Servers, r.Waves, r.Rebooted, r.MaxUnavail)

	// 2. Fungibility: demand shifts, so 50 Web servers redeploy to the
	// Cache2 pool — same hardware, different soft SKU (§3).
	mv, err := f.Redeploy("Web", "Cache2", 50)
	must(err)
	webPool, _ := f.Pool("Web")
	cachePool, _ := f.Pool("Cache2")
	fmt.Printf("redeployed %d servers Web -> Cache2 (%d reboots); pools now %d / %d\n",
		mv.Servers, mv.Rebooted, webPool.Size(), cachePool.Size())

	// 3. Aggregate capacity: the paper's economics. At fleet scale,
	// Web's +4.5-6% soft-SKU gain frees thousands of servers.
	gain := 6.2 // measured vs production, Fig 19
	for _, n := range []int{1000, 100000, 400000} {
		fmt.Printf("at %6d Web servers, a %+.1f%% soft SKU frees %d servers\n",
			n, gain, fleet.CapacitySavings(n, gain))
	}

	// 4. Aggregate throughput of the reconfigured fleet.
	qps, err := f.PoolThroughput("Web", 1)
	must(err)
	fmt.Printf("Web pool aggregate capacity: %.2fM QPS across %d servers\n",
		qps/1e6, webPool.Size())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
