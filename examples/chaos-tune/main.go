// Chaos-tune demonstrates the robustness layer: a full µSKU tuning run
// completing correctly while a seeded fault injector fails knob
// applies, hangs reboots, drops and corrupts A/B samples, and spikes
// the production load — and a self-healing fleet rollout that aborts
// on a crashed server and rolls every touched machine back.
//
// The injector is deterministic: the same chaos seed always reproduces
// the same fault schedule, so every run of this example prints the
// same story.
//
// Run with:
//
//	go run ./examples/chaos-tune
package main

import (
	"fmt"
	"log"

	"softsku"
	"softsku/internal/fleet"
	"softsku/internal/knob"
)

func main() {
	// 1. Guardrailed tuning under the default production fault mix.
	// CoreFreq is included deliberately: every below-production
	// frequency regresses hard, so the 2% guardrail aborts those trials
	// early and reverts the treatment servers instead of letting them
	// serve a bad config for the full sample budget.
	in := softsku.DefaultTuneInput("Web", "Skylake18")
	in.Knobs = []knob.ID{knob.THP, knob.CoreFreq}
	in.AB.MinSamples = 150
	in.AB.MaxSamples = 1500
	in.AB.GuardrailPct = 2

	tool, err := softsku.NewTool(in)
	must(err)
	eng := softsku.NewChaos(7, softsku.DefaultChaosConfig())
	tool.SetChaos(eng)
	res, err := tool.Run()
	must(err)

	fmt.Printf("tuning %s on %s under injected faults (chaos seed 7)\n", res.Service, res.Platform)
	fmt.Printf("  composed soft SKU: %s\n", res.SoftSKU)
	fmt.Printf("  vs production:     %s\n", res.VsProduction)
	fmt.Printf("  absorbed faults:   %s\n", eng.Summary())
	fmt.Printf("  degradation:       %d settings skipped, %d guardrail reverts\n\n",
		res.Skipped, res.Reverts)

	// 2. Self-healing rollout: SHP changes need reboots, so the rollout
	// runs in waves with post-wave health checks. A server that crashes
	// mid-wave comes back on its old config, fails the check, and the
	// rollout aborts and rolls back — the pool either converges fully or
	// is left exactly as it was.
	skl := softsku.Skylake18()
	web, err := softsku.ServiceByName("Web")
	must(err)
	prod := softsku.ProductionConfig(skl, web)
	soft := prod.With(knob.SHP, knob.IntSetting("300", 300))

	deploy := func(seed uint64) fleet.Rollout {
		f := fleet.New()
		must(f.AddPool(web, skl, 60, prod))
		crashy := softsku.DefaultChaosConfig()
		crashy.CrashPct = 0.25 // a rough day in the datacenter
		f.SetChaos(softsku.NewChaos(seed, crashy))
		r, err := f.Rollout("Web", soft, 10)
		pool, _ := f.Pool("Web")
		if err != nil {
			fmt.Printf("rollout (chaos seed %d): %v\n", seed, err)
			fmt.Printf("  failed wave %d of a crashing fleet; rolled back: %v; pool still on production config: %v\n",
				r.FailedWave, r.RolledBack, pool.Config() == prod)
		} else {
			fmt.Printf("rollout (chaos seed %d): converged in %d waves, %d reboots\n",
				seed, r.Waves, r.Rebooted)
		}
		return r
	}
	r1 := deploy(11)
	r2 := deploy(11) // same seed: the identical fault schedule replays
	fmt.Printf("  deterministic: same seed gave identical rollouts: %v\n\n",
		fmt.Sprint(r1) == fmt.Sprint(r2))

	// 3. With the faults gone (or fixed), the same rollout converges.
	f := fleet.New()
	must(f.AddPool(web, skl, 60, prod))
	r, err := f.Rollout("Web", soft, 10)
	must(err)
	fmt.Printf("fault-free retry: converged in %d waves (%d reboots), pool on soft SKU\n", r.Waves, r.Rebooted)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
