// Characterize-fleet reproduces the heart of the paper's §2 study: it
// profiles all seven production microservices on their fleet
// platforms and prints the diversity that motivates soft SKUs —
// six-orders-of-magnitude spreads in work per query, conflicting
// cache/TLB bottlenecks, and utilization ceilings imposed by QoS.
//
// Run with:
//
//	go run ./examples/characterize-fleet
package main

import (
	"fmt"
	"log"

	"softsku"
)

func main() {
	fmt.Println("Fleet characterization (production configs, QoS-limited peak load)")
	fmt.Println()

	var chars []softsku.Characterization
	for _, svc := range softsku.Services() {
		c, err := softsku.Characterize(svc.Name, softsku.Seed(1))
		if err != nil {
			log.Fatal(err)
		}
		chars = append(chars, c)
		fmt.Println(c)
		fmt.Println()
	}

	// The Fig 1 takeaway: extreme diversity across the fleet.
	spread := func(name string, get func(softsku.Characterization) float64) {
		lo, hi := get(chars[0]), get(chars[0])
		for _, c := range chars[1:] {
			v := get(c)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		fmt.Printf("  %-24s %8.3g .. %-8.3g (%.0fx spread)\n", name, lo, hi, hi/lo)
	}
	fmt.Println("Diversity across the fleet (Fig 1):")
	spread("throughput (QPS)", func(c softsku.Characterization) float64 { return c.QPS })
	spread("request latency (s)", func(c softsku.Characterization) float64 { return c.MeanLatencySec })
	spread("context switches (/s)", func(c softsku.Characterization) float64 { return c.CtxSwitchRate })
	spread("IPC", func(c softsku.Characterization) float64 { return c.Counters.IPC })
	spread("L1I code MPKI", func(c softsku.Characterization) float64 { return c.Counters.L1CodeMPKI })
	spread("memory bandwidth (GB/s)", func(c softsku.Characterization) float64 { return c.Counters.MemBWGBs })
	fmt.Println()
	fmt.Println("No single hardware configuration serves all seven well — the case for soft SKUs (§3).")
}
