// Benchmarks that regenerate every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment on the
// simulated fleet and prints the reproduced table (with the paper's
// reference values alongside where it reports them), so
//
//	go test -bench=. -benchmem ./...
//
// leaves a complete paper-vs-measured record in its output.
// EXPERIMENTS.md summarizes the same results.
package softsku_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"softsku"
	"softsku/internal/figures"
	"softsku/internal/telemetry"
)

const benchSeed = 1

// benchCtx caches machines/peak searches across the characterization
// benchmarks, mirroring how one profiling campaign feeds many figures.
var benchCtx = figures.NewContext(benchSeed)

// run executes the experiment b.N times and prints the reproduced
// table once.
func run(b *testing.B, gen func() figures.Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t := gen()
		if i == 0 {
			fmt.Println(t.String())
		}
	}
	recordBench(b, nil)
}

// ---- machine-readable benchmark summary ----
//
// Every benchmark records its ns/op (plus any extra metrics) into
// benchSummary; TestMain writes the collected results to
// BENCH_telemetry.json after a -bench run, so the perf trajectory is
// tracked across PRs. Plain `go test` runs no benchmarks and writes
// no file.

type benchEntry struct {
	NsPerOp float64            `json:"ns_per_op"`
	Extra   map[string]float64 `json:"extra,omitempty"`
}

var benchSummary = struct {
	mu      sync.Mutex
	entries map[string]benchEntry
}{entries: make(map[string]benchEntry)}

// recordBench captures b's measured ns/op under its benchmark name.
// Call it at the end of the benchmark body, after the timed loop.
func recordBench(b *testing.B, extra map[string]float64) {
	b.Helper()
	if b.N == 0 {
		return
	}
	benchSummary.mu.Lock()
	defer benchSummary.mu.Unlock()
	benchSummary.entries[b.Name()] = benchEntry{
		NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		Extra:   extra,
	}
}

const benchSummaryPath = "BENCH_telemetry.json"

func writeBenchSummary() {
	benchSummary.mu.Lock()
	defer benchSummary.mu.Unlock()
	if len(benchSummary.entries) == 0 {
		return
	}
	doc := struct {
		Go                      string                `json:"go"`
		SimSecondsPerWallSecond float64               `json:"sim_seconds_per_wall_second"`
		Benchmarks              map[string]benchEntry `json:"benchmarks"`
	}{
		Go: runtime.Version(),
		SimSecondsPerWallSecond: telemetry.Default.
			Gauge("softsku_sim_seconds_per_wall_second", "").Value(),
		Benchmarks: benchSummary.entries,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench summary:", err)
		return
	}
	if err := os.WriteFile(benchSummaryPath, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench summary:", err)
	}
}

func TestMain(m *testing.M) {
	code := m.Run()
	writeBenchSummary()
	os.Exit(code)
}

// BenchmarkSimThroughput measures the raw discrete-event simulation
// rate and records sim-seconds per wall-second — the headline
// observability number later perf PRs optimize against.
func BenchmarkSimThroughput(b *testing.B) {
	sku, err := softsku.PlatformByName("Skylake18")
	if err != nil {
		b.Fatal(err)
	}
	svc, err := softsku.ServiceByName("Web")
	if err != nil {
		b.Fatal(err)
	}
	srv, err := softsku.NewServer(sku, softsku.ProductionConfig(sku, svc))
	if err != nil {
		b.Fatal(err)
	}
	m, err := softsku.NewMachine(srv, svc, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	virt := telemetry.Default.Counter("softsku_sim_virtual_seconds_total", "")
	// Elapsed-since-first-Run gauge: the delta across the benchmark is
	// the wall time it spanned, immune to engine-overlap double counting.
	wall := telemetry.Default.Gauge("softsku_sim_wall_seconds", "")
	events := telemetry.Default.Counter("softsku_sim_events_total", "")
	v0, w0, e0 := virt.Value(), wall.Value(), events.Value()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.FindPeak(benchSeed)
	}
	b.StopTimer()
	extra := map[string]float64{}
	if dw := wall.Value() - w0; dw > 0 {
		extra["sim_seconds_per_wall_second"] = (virt.Value() - v0) / dw
		extra["sim_events_per_wall_second"] = (events.Value() - e0) / dw
	}
	recordBench(b, extra)
}

// ---- §2 characterization: Tables 1-2, Figs 1-12 ----

func BenchmarkTable1SKUs(b *testing.B) { run(b, figures.Table1SKUs) }

func BenchmarkTable2Throughput(b *testing.B) {
	run(b, func() figures.Table { return figures.Table2Throughput(benchCtx) })
}

func BenchmarkFig1Diversity(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig1Diversity(benchCtx) })
}

func BenchmarkFig2RequestBreakdown(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig2Breakdown(benchCtx) })
}

func BenchmarkFig3CPUUtil(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig3CPUUtil(benchCtx) })
}

func BenchmarkFig4ContextSwitch(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig4CtxSwitch(benchCtx) })
}

func BenchmarkFig5InstructionMix(b *testing.B) { run(b, figures.Fig5Mix) }

func BenchmarkFig6IPC(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig6IPC(benchCtx) })
}

func BenchmarkFig7TopDown(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig7TopDown(benchCtx) })
}

func BenchmarkFig8L1L2MPKI(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig8L1L2(benchCtx) })
}

func BenchmarkFig9LLCMPKI(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig9LLC(benchCtx) })
}

func BenchmarkFig10LLCWays(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig10Ways(benchSeed) })
}

func BenchmarkFig11TLB(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig11TLB(benchCtx) })
}

func BenchmarkFig12Bandwidth(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig12Bandwidth(benchCtx) })
}

// ---- §6 µSKU evaluation: Figs 14-19 ----

func BenchmarkFig14FrequencySweep(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig14Frequency(benchSeed) })
}

func BenchmarkFig15CoreCount(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig15CoreCount(benchSeed) })
}

func BenchmarkFig16CDP(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig16CDP(benchSeed) })
}

func BenchmarkFig17Prefetcher(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig17Prefetcher(benchSeed) })
}

func BenchmarkFig18HugePages(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig18HugePages(benchSeed) })
}

func BenchmarkFig19SoftSKU(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig19SoftSKU(benchSeed) })
}

// ---- ablations (DESIGN.md §4) ----

func BenchmarkAblationSearch(b *testing.B) {
	run(b, func() figures.Table { return figures.AblationSearch(benchSeed) })
}

func BenchmarkAblationSampling(b *testing.B) {
	run(b, func() figures.Table { return figures.AblationSampling(benchSeed) })
}

func BenchmarkAblationMetric(b *testing.B) {
	run(b, func() figures.Table { return figures.AblationMetric(benchSeed) })
}

func BenchmarkAblationSHPSearch(b *testing.B) {
	run(b, func() figures.Table { return figures.AblationSHPSearch(benchSeed) })
}

// ---- §7 extensions implemented ----

func BenchmarkExtensionColocation(b *testing.B) {
	run(b, func() figures.Table { return figures.ExtensionColocation(benchSeed) })
}

func BenchmarkExtensionEnergy(b *testing.B) {
	run(b, func() figures.Table { return figures.ExtensionEnergy(benchSeed) })
}

func BenchmarkExtensionSPECValidation(b *testing.B) {
	run(b, func() figures.Table { return figures.ExtensionSPEC(benchSeed) })
}
