// Benchmarks that regenerate every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment on the
// simulated fleet and prints the reproduced table (with the paper's
// reference values alongside where it reports them), so
//
//	go test -bench=. -benchmem ./...
//
// leaves a complete paper-vs-measured record in its output.
// EXPERIMENTS.md summarizes the same results.
package softsku_test

import (
	"fmt"
	"testing"

	"softsku/internal/figures"
)

const benchSeed = 1

// benchCtx caches machines/peak searches across the characterization
// benchmarks, mirroring how one profiling campaign feeds many figures.
var benchCtx = figures.NewContext(benchSeed)

// run executes the experiment b.N times and prints the reproduced
// table once.
func run(b *testing.B, gen func() figures.Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t := gen()
		if i == 0 {
			fmt.Println(t.String())
		}
	}
}

// ---- §2 characterization: Tables 1-2, Figs 1-12 ----

func BenchmarkTable1SKUs(b *testing.B) { run(b, figures.Table1SKUs) }

func BenchmarkTable2Throughput(b *testing.B) {
	run(b, func() figures.Table { return figures.Table2Throughput(benchCtx) })
}

func BenchmarkFig1Diversity(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig1Diversity(benchCtx) })
}

func BenchmarkFig2RequestBreakdown(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig2Breakdown(benchCtx) })
}

func BenchmarkFig3CPUUtil(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig3CPUUtil(benchCtx) })
}

func BenchmarkFig4ContextSwitch(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig4CtxSwitch(benchCtx) })
}

func BenchmarkFig5InstructionMix(b *testing.B) { run(b, figures.Fig5Mix) }

func BenchmarkFig6IPC(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig6IPC(benchCtx) })
}

func BenchmarkFig7TopDown(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig7TopDown(benchCtx) })
}

func BenchmarkFig8L1L2MPKI(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig8L1L2(benchCtx) })
}

func BenchmarkFig9LLCMPKI(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig9LLC(benchCtx) })
}

func BenchmarkFig10LLCWays(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig10Ways(benchSeed) })
}

func BenchmarkFig11TLB(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig11TLB(benchCtx) })
}

func BenchmarkFig12Bandwidth(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig12Bandwidth(benchCtx) })
}

// ---- §6 µSKU evaluation: Figs 14-19 ----

func BenchmarkFig14FrequencySweep(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig14Frequency(benchSeed) })
}

func BenchmarkFig15CoreCount(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig15CoreCount(benchSeed) })
}

func BenchmarkFig16CDP(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig16CDP(benchSeed) })
}

func BenchmarkFig17Prefetcher(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig17Prefetcher(benchSeed) })
}

func BenchmarkFig18HugePages(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig18HugePages(benchSeed) })
}

func BenchmarkFig19SoftSKU(b *testing.B) {
	run(b, func() figures.Table { return figures.Fig19SoftSKU(benchSeed) })
}

// ---- ablations (DESIGN.md §4) ----

func BenchmarkAblationSearch(b *testing.B) {
	run(b, func() figures.Table { return figures.AblationSearch(benchSeed) })
}

func BenchmarkAblationSampling(b *testing.B) {
	run(b, func() figures.Table { return figures.AblationSampling(benchSeed) })
}

func BenchmarkAblationMetric(b *testing.B) {
	run(b, func() figures.Table { return figures.AblationMetric(benchSeed) })
}

func BenchmarkAblationSHPSearch(b *testing.B) {
	run(b, func() figures.Table { return figures.AblationSHPSearch(benchSeed) })
}

// ---- §7 extensions implemented ----

func BenchmarkExtensionColocation(b *testing.B) {
	run(b, func() figures.Table { return figures.ExtensionColocation(benchSeed) })
}

func BenchmarkExtensionEnergy(b *testing.B) {
	run(b, func() figures.Table { return figures.ExtensionEnergy(benchSeed) })
}

func BenchmarkExtensionSPECValidation(b *testing.B) {
	run(b, func() figures.Table { return figures.ExtensionSPEC(benchSeed) })
}
